(* Tests for the fitness functions (Section IV-C2): the segment
   computation of Fig. 5, the f(n) saturation behaviour, the LL chain,
   and monotonicity properties the GA relies on. *)

let hw = Pimhw.Config.puma_like
let timing p = Pimhw.Timing.create ~parallelism:p hw

(* --- Fig. 5 segment computation ------------------------------------------ *)

let test_core_time_figure5 () =
  (* The paper's example: nodes with (ags, cycles) =
     (3, 300), (2, 3000), (2, 1000), (1, 500) -> segments
     300*f(8) + 200*f(5) + 500*f(4) + 2000*f(2).
     With parallelism 20, f(n)=T_MVM=100ns for all n <= 20, so the total
     is 3000 * 100 ns. *)
  let t = timing 20 in
  let pairs = [ (3, 300); (2, 3000); (2, 1000); (1, 500) ] in
  Alcotest.(check (float 1.0)) "P=20: all segments at T_MVM" 300_000.0
    (Pimcomp.Fitness.core_time t pairs);
  (* with parallelism 2, f(n) = n * 50ns for n >= 2:
     300*8*50 + 200*5*50 + 500*4*50 + 2000*2*50 = 470_000 ns *)
  let t2 = timing 2 in
  Alcotest.(check (float 1.0)) "P=2: issue-bound segments" 470_000.0
    (Pimcomp.Fitness.core_time t2 pairs)

let test_core_time_edge_cases () =
  let t = timing 4 in
  Alcotest.(check (float 1e-9)) "empty core" 0.0 (Pimcomp.Fitness.core_time t []);
  Alcotest.(check (float 1e-9)) "zero cycles filtered" 0.0
    (Pimcomp.Fitness.core_time t [ (3, 0) ]);
  (* single AG: cycles * T_MVM *)
  Alcotest.(check (float 1e-6)) "single AG" 10_000.0
    (Pimcomp.Fitness.core_time t [ (1, 100) ])

let core_time_monotone =
  QCheck.Test.make ~name:"core_time monotone in load" ~count:300
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 6)
           (pair (int_range 1 8) (int_range 1 500)))
        (int_range 1 32))
    (fun (pairs, p) ->
      QCheck.assume (pairs <> []);
      let t = timing p in
      let base = Pimcomp.Fitness.core_time t pairs in
      let more = Pimcomp.Fitness.core_time t ((2, 600) :: pairs) in
      more >= base)

(* --- whole-chromosome fitness --------------------------------------------- *)

let compile_pair name size =
  let g = Nnir.Zoo.build ~input_size:size name in
  let table = Pimcomp.Partition.of_graph hw g in
  let core_count = Pimcomp.Partition.fit_core_count table in
  let chrom =
    Pimcomp.Puma_baseline.build table ~core_count ~max_node_num_in_core:16
  in
  (table, chrom)

let test_fitness_positive_and_finite () =
  let _, chrom = compile_pair "tiny" 16 in
  List.iter
    (fun p ->
      let t = timing p in
      let ht = Pimcomp.Fitness.ht t chrom in
      let ll = Pimcomp.Fitness.ll t chrom in
      Alcotest.(check bool) "ht positive" true (ht > 0.0 && Float.is_finite ht);
      Alcotest.(check bool) "ll positive" true (ll > 0.0 && Float.is_finite ll))
    [ 1; 4; 20; 64 ]

let test_ht_decreases_with_parallelism () =
  let _, chrom = compile_pair "vgg16" 56 in
  let f p = Pimcomp.Fitness.ht (timing p) chrom in
  Alcotest.(check bool) "P=8 <= P=4" true (f 8 <= f 4 +. 1e-6);
  Alcotest.(check bool) "P=32 <= P=8" true (f 32 <= f 8 +. 1e-6)

let test_replication_reduces_ht () =
  (* starting from replication 1 everywhere, adding replicas of the
     bottleneck layer must eventually reduce F_HT *)
  let g = Nnir.Zoo.build ~input_size:16 "tiny" in
  let table = Pimcomp.Partition.of_graph hw g in
  let rng = Pimcomp.Rng.create ~seed:42 in
  let chrom =
    Pimcomp.Chromosome.compact_initial rng table ~core_count:8
      ~max_node_num_in_core:8 ~extra_replica_attempts:0 ()
  in
  let t = timing 4 in
  let before = Pimcomp.Fitness.ht t chrom in
  (* single additions may not move the bottleneck (sibling layers share
     the core), so replicate cumulatively and keep improvements *)
  let best = ref before in
  let current = ref chrom in
  for _ = 1 to 60 do
    let c = Pimcomp.Chromosome.copy !current in
    if Pimcomp.Chromosome.mutate rng c Pimcomp.Chromosome.Add_replica then begin
      let f = Pimcomp.Fitness.ht t c in
      if f < !best then begin
        best := f;
        current := c
      end
    end
  done;
  Alcotest.(check bool) "cumulative replication helps" true (!best < before)

let test_split_replicas_counting () =
  let table, chrom = compile_pair "tiny" 16 in
  for i = 0 to Pimcomp.Partition.num_weighted table - 1 do
    let splits = Pimcomp.Fitness.split_replicas chrom i in
    let r = Pimcomp.Chromosome.replication chrom i in
    Alcotest.(check bool) "0 <= splits <= R" true (splits >= 0 && splits <= r)
  done

let test_comm_penalty_zero_when_unsplit () =
  let table, _ = compile_pair "tiny" 16 in
  let info = (Pimcomp.Partition.entries table).(0) in
  Alcotest.(check (float 1e-9)) "no splits, no penalty" 0.0
    (Pimcomp.Fitness.per_window_comm_ns (timing 4) info ~splits:0
       ~replication:3);
  Alcotest.(check bool) "splits cost" true
    (Pimcomp.Fitness.per_window_comm_ns (timing 4) info ~splits:2
       ~replication:4
    > 0.0)

let test_energy_estimate () =
  let _, chrom = compile_pair "squeezenet" 56 in
  let t = timing 20 in
  let em = Pimhw.Energy_model.create hw in
  List.iter
    (fun mode ->
      let e = Pimcomp.Fitness.estimate_energy_pj em mode t chrom in
      Alcotest.(check bool) "positive and finite" true
        (e > 0.0 && Float.is_finite e))
    Pimcomp.Mode.all;
  (* the dynamic part is mapping-invariant; adding replicas must not
     decrease the estimate *)
  let rng = Pimcomp.Rng.create ~seed:3 in
  let bigger = Pimcomp.Chromosome.copy chrom in
  if Pimcomp.Chromosome.mutate rng bigger Pimcomp.Chromosome.Add_replica then begin
    let base =
      Pimcomp.Fitness.estimate_energy_pj em Pimcomp.Mode.Low_latency t chrom
    in
    let more =
      Pimcomp.Fitness.estimate_energy_pj em Pimcomp.Mode.Low_latency t bigger
    in
    (* LL static grows with active cores unless the makespan shrinks more *)
    Alcotest.(check bool) "estimate reacts to mapping" true (more <> base)
  end

let test_objective_evaluate () =
  let _, chrom = compile_pair "tiny" 16 in
  let t = timing 8 in
  let time_f =
    Pimcomp.Fitness.evaluate ~objective:Pimcomp.Fitness.Minimize_time
      Pimcomp.Mode.High_throughput t chrom
  in
  let edp_f =
    Pimcomp.Fitness.evaluate ~objective:Pimcomp.Fitness.Minimize_energy_delay
      Pimcomp.Mode.High_throughput t chrom
  in
  Alcotest.(check bool) "both positive" true (time_f > 0.0 && edp_f > 0.0);
  Alcotest.(check bool) "objectives differ" true (time_f <> edp_f);
  Alcotest.(check string) "names" "energy-delay"
    (Pimcomp.Fitness.objective_name Pimcomp.Fitness.Minimize_energy_delay)

let test_ll_ge_simple_chain_bound () =
  (* F_LL is at least the largest standalone node time *)
  let table, chrom = compile_pair "squeezenet" 56 in
  let t = timing 20 in
  let g = Pimcomp.Partition.table_graph table in
  let worst_standalone =
    List.fold_left
      (fun acc id ->
        let r = Pimcomp.Chromosome.replication_by_node_id chrom id in
        Float.max acc
          (Pimcomp.Fitness.standalone_ns t table g id ~replication:r))
      0.0
      (Nnir.Graph.weighted_nodes g)
  in
  Alcotest.(check bool) "LL >= worst stage" true
    (Pimcomp.Fitness.ll t chrom >= worst_standalone -. 1e-6)

(* --- incremental evaluator ------------------------------------------------- *)

(* The incremental evaluator must match the full recomputation
   bit-for-bit after arbitrary mutation sequences: its caches are
   refreshed by the same functions the full path runs, so any divergence
   is a dirty-set bug.  Exercises both modes, several seeds, and the
   parent-to-child copy path the GA uses. *)
let incremental_matches_full mode () =
  let g = Nnir.Zoo.build ~input_size:56 "squeezenet" in
  let table = Pimcomp.Partition.of_graph hw g in
  let core_count = Pimcomp.Partition.fit_core_count table in
  let t = timing 8 in
  let ctx = Pimcomp.Fitness.context mode t table ~core_count in
  List.iter
    (fun seed ->
      let rng = Pimcomp.Rng.create ~seed in
      let chrom =
        ref
          (Pimcomp.Chromosome.random_initial rng table ~core_count
             ~max_node_num_in_core:16 ~extra_replica_attempts:2 ())
      in
      let inc = ref (Pimcomp.Fitness.Inc.create ctx !chrom) in
      let check_match step =
        let cached = Pimcomp.Fitness.Inc.fitness !inc in
        let full = Pimcomp.Fitness.evaluate mode t !chrom in
        if cached <> full then
          Alcotest.failf "seed %d step %d: incremental %.17g <> full %.17g"
            seed step cached full
      in
      check_match 0;
      for step = 1 to 100 do
        (* periodically branch a child, as the GA does every generation *)
        if step mod 10 = 0 then begin
          let child = Pimcomp.Chromosome.copy !chrom in
          inc := Pimcomp.Fitness.Inc.copy !inc child;
          chrom := child
        end;
        match Pimcomp.Chromosome.mutate_random_touched rng !chrom with
        | Some touched ->
            Pimcomp.Fitness.Inc.update !inc touched;
            check_match step
        | None -> ()
      done)
    [ 1; 7; 42 ]

let () =
  Alcotest.run "fitness"
    [
      ( "core-time",
        [
          Alcotest.test_case "Fig. 5 example" `Quick test_core_time_figure5;
          Alcotest.test_case "edge cases" `Quick test_core_time_edge_cases;
          QCheck_alcotest.to_alcotest core_time_monotone;
        ] );
      ( "chromosome-fitness",
        [
          Alcotest.test_case "positive and finite" `Quick
            test_fitness_positive_and_finite;
          Alcotest.test_case "HT vs parallelism" `Quick
            test_ht_decreases_with_parallelism;
          Alcotest.test_case "replication helps HT" `Quick
            test_replication_reduces_ht;
          Alcotest.test_case "split counting" `Quick
            test_split_replicas_counting;
          Alcotest.test_case "comm penalty" `Quick
            test_comm_penalty_zero_when_unsplit;
          Alcotest.test_case "LL lower bound" `Quick
            test_ll_ge_simple_chain_bound;
          Alcotest.test_case "energy estimate" `Quick test_energy_estimate;
          Alcotest.test_case "objectives" `Quick test_objective_evaluate;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "matches full (HT)" `Quick
            (incremental_matches_full Pimcomp.Mode.High_throughput);
          Alcotest.test_case "matches full (LL)" `Quick
            (incremental_matches_full Pimcomp.Mode.Low_latency);
        ] );
    ]
