(* Tests for the genetic algorithm (Section IV-C): determinism,
   monotone improvement over the initial population, seed handling and
   the random-search ablation baseline. *)

let hw = Pimhw.Config.puma_like

let setup name size =
  let g = Nnir.Zoo.build ~input_size:size name in
  let table = Pimcomp.Partition.of_graph hw g in
  let core_count = Pimcomp.Partition.fit_core_count table in
  (table, core_count)

let params =
  { Pimcomp.Genetic.fast_params with population = 16; iterations = 25 }

let optimize ?seeds ~seed ~mode table core_count =
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let rng = Pimcomp.Rng.create ~seed in
  Pimcomp.Genetic.optimize ~params ?seeds ~mode ~timing ~rng table ~core_count
    ~max_node_num_in_core:16 ()

let test_deterministic () =
  let table, cores = setup "tiny" 16 in
  let r1 = optimize ~seed:7 ~mode:Pimcomp.Mode.High_throughput table cores in
  let r2 = optimize ~seed:7 ~mode:Pimcomp.Mode.High_throughput table cores in
  Alcotest.(check bool) "same fitness for same seed" true
    (r1.Pimcomp.Genetic.best_fitness = r2.Pimcomp.Genetic.best_fitness);
  Alcotest.(check bool) "same history for same seed" true
    (r1.Pimcomp.Genetic.history = r2.Pimcomp.Genetic.history)

let test_incremental_equals_full () =
  (* Incremental and Full evaluation share their arithmetic, so for a
     fixed seed the whole search trajectory — not just the final best —
     must be bit-identical. *)
  let table, cores = setup "squeezenet" 56 in
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let run evaluation mode =
    Pimcomp.Genetic.optimize ~params ~evaluation ~mode ~timing
      ~rng:(Pimcomp.Rng.create ~seed:31)
      table ~core_count:cores ~max_node_num_in_core:16 ()
  in
  List.iter
    (fun mode ->
      let inc = run Pimcomp.Genetic.Incremental mode in
      let full = run Pimcomp.Genetic.Full mode in
      Alcotest.(check bool) "identical best fitness" true
        (inc.Pimcomp.Genetic.best_fitness = full.Pimcomp.Genetic.best_fitness);
      Alcotest.(check bool) "identical history" true
        (inc.Pimcomp.Genetic.history = full.Pimcomp.Genetic.history);
      Alcotest.(check int) "identical evaluation count"
        full.Pimcomp.Genetic.evaluations inc.Pimcomp.Genetic.evaluations)
    Pimcomp.Mode.all

let test_improves_over_initial () =
  let table, cores = setup "tiny" 16 in
  List.iter
    (fun mode ->
      let r = optimize ~seed:11 ~mode table cores in
      Alcotest.(check bool) "best <= initial" true
        (r.Pimcomp.Genetic.best_fitness
        <= r.Pimcomp.Genetic.initial_best_fitness +. 1e-9);
      Alcotest.(check bool) "best is valid" true
        (Pimcomp.Chromosome.is_valid r.Pimcomp.Genetic.best))
    Pimcomp.Mode.all

let test_history_monotone () =
  let table, cores = setup "tiny" 16 in
  let r = optimize ~seed:13 ~mode:Pimcomp.Mode.High_throughput table cores in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "history non-increasing" true (b <= a +. 1e-9);
        check rest
    | _ -> ()
  in
  check r.Pimcomp.Genetic.history;
  Alcotest.(check int) "history length"
    (r.Pimcomp.Genetic.generations_run + 1)
    (List.length r.Pimcomp.Genetic.history)

let test_seed_never_worse () =
  (* seeding with the PUMA-like individual means the result can only be
     at least as good as that seed *)
  let table, cores = setup "squeezenet" 56 in
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let puma =
    Pimcomp.Puma_baseline.build table ~core_count:cores
      ~max_node_num_in_core:16
  in
  let puma_fitness = Pimcomp.Fitness.ht timing puma in
  let r =
    optimize ~seeds:[ puma ] ~seed:17 ~mode:Pimcomp.Mode.High_throughput table
      cores
  in
  Alcotest.(check bool) "GA <= PUMA seed" true
    (r.Pimcomp.Genetic.best_fitness <= puma_fitness +. 1e-9)

let test_invalid_seed_filtered () =
  let table, cores = setup "tiny" 16 in
  (* an empty chromosome violates the every-node-mapped invariant and
     must be dropped rather than crash the GA *)
  let bogus =
    Pimcomp.Chromosome.create_empty table ~core_count:cores
      ~max_node_num_in_core:16
  in
  let r =
    optimize ~seeds:[ bogus ] ~seed:19 ~mode:Pimcomp.Mode.High_throughput table
      cores
  in
  Alcotest.(check bool) "result valid" true
    (Pimcomp.Chromosome.is_valid r.Pimcomp.Genetic.best)

let test_patience_stops_early () =
  let table, cores = setup "tiny" 16 in
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let rng = Pimcomp.Rng.create ~seed:23 in
  let r =
    Pimcomp.Genetic.optimize
      ~params:{ params with iterations = 10_000; patience = Some 5 }
      ~mode:Pimcomp.Mode.High_throughput ~timing ~rng table ~core_count:cores
      ~max_node_num_in_core:16 ()
  in
  Alcotest.(check bool) "stopped well before the cap" true
    (r.Pimcomp.Genetic.generations_run < 2_000)

let test_ga_beats_random_search () =
  (* with the same evaluation budget the mutation-driven GA should be at
     least as good as pure random initialisation *)
  let table, cores = setup "tiny" 16 in
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let ga =
    Pimcomp.Genetic.optimize ~params ~mode:Pimcomp.Mode.High_throughput
      ~timing
      ~rng:(Pimcomp.Rng.create ~seed:29)
      table ~core_count:cores ~max_node_num_in_core:16 ()
  in
  let rs =
    Pimcomp.Genetic.random_search ~params ~mode:Pimcomp.Mode.High_throughput
      ~timing
      ~rng:(Pimcomp.Rng.create ~seed:29)
      table ~core_count:cores ~max_node_num_in_core:16 ()
  in
  Alcotest.(check bool) "GA <= random search * 1.05" true
    (ga.Pimcomp.Genetic.best_fitness
    <= rs.Pimcomp.Genetic.best_fitness *. 1.05)

let test_random_search_history_curve () =
  (* the ablation baseline must return a curve (running best per
     population-sized chunk of the budget), not a single point *)
  let table, cores = setup "tiny" 16 in
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let r =
    Pimcomp.Genetic.random_search ~params ~mode:Pimcomp.Mode.High_throughput
      ~timing
      ~rng:(Pimcomp.Rng.create ~seed:37)
      table ~core_count:cores ~max_node_num_in_core:16 ()
  in
  Alcotest.(check int) "one history point per chunk"
    (params.Pimcomp.Genetic.iterations + 1)
    (List.length r.Pimcomp.Genetic.history);
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "running best non-increasing" true (b <= a);
        check rest
    | _ -> ()
  in
  check r.Pimcomp.Genetic.history;
  Alcotest.(check bool) "last point is the best" true
    (List.nth r.Pimcomp.Genetic.history
       (List.length r.Pimcomp.Genetic.history - 1)
    = r.Pimcomp.Genetic.best_fitness);
  Alcotest.(check bool) "first point is the initial best" true
    (List.hd r.Pimcomp.Genetic.history
    = r.Pimcomp.Genetic.initial_best_fitness)

(* --- Rng.split ------------------------------------------------------------- *)

let test_split_deterministic () =
  let a = Pimcomp.Rng.create ~seed:99 in
  let b = Pimcomp.Rng.create ~seed:99 in
  let ca = Pimcomp.Rng.split a and cb = Pimcomp.Rng.split b in
  for i = 0 to 63 do
    Alcotest.(check int)
      (Fmt.str "child draw %d" i)
      (Pimcomp.Rng.bits ca) (Pimcomp.Rng.bits cb);
    Alcotest.(check int)
      (Fmt.str "parent continuation draw %d" i)
      (Pimcomp.Rng.bits a) (Pimcomp.Rng.bits b)
  done

let pearson xs ys =
  let n = float_of_int (Array.length xs) in
  let mean a = Array.fold_left ( +. ) 0.0 a /. n in
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy))
    xs;
  !sxy /. sqrt (!sxx *. !syy)

let test_split_independent () =
  (* child streams must not correlate with the parent's draws (before or
     after the split) nor with each other *)
  let n = 4096 in
  let draws rng = Array.init n (fun _ -> Pimcomp.Rng.float rng 1.0) in
  List.iter
    (fun seed ->
      let parent = Pimcomp.Rng.create ~seed in
      let pre = draws parent in
      let child1 = Pimcomp.Rng.split parent in
      let child2 = Pimcomp.Rng.split parent in
      let post = draws parent in
      let c1 = draws child1 and c2 = draws child2 in
      let check label a b =
        let r = pearson a b in
        if Float.abs r > 0.05 then
          Alcotest.failf "seed %d: |corr %s| = %.4f > 0.05" seed label r
      in
      check "child1 vs parent-pre" c1 pre;
      check "child1 vs parent-post" c1 post;
      check "child2 vs parent-post" c2 post;
      check "child1 vs child2" c1 c2)
    [ 1; 42; 12345 ]

(* --- island model ----------------------------------------------------------- *)

let island_optimize ?(island = Pimcomp.Genetic.default_island_params)
    ?(params = params) ~seed ~mode table core_count =
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let rng = Pimcomp.Rng.create ~seed in
  Pimcomp.Genetic.optimize_islands ~params ~island ~mode ~timing ~rng table
    ~core_count ~max_node_num_in_core:16 ()

(* Satellite smoke for `dune runtest`: the parallel path (2 islands on
   however many domains the host recommends) runs on every tier-1
   invocation, not just in bench. *)
let test_island_smoke () =
  let table, cores = setup "tiny" 16 in
  let island =
    {
      Pimcomp.Genetic.islands = 2;
      migration_interval = 5;
      migration_size = 1;
      domains = None;
    }
  in
  List.iter
    (fun mode ->
      let r =
        island_optimize ~island ~params:Pimcomp.Genetic.fast_params ~seed:3
          ~mode table cores
      in
      Alcotest.(check bool) "best is valid" true
        (Pimcomp.Chromosome.is_valid r.Pimcomp.Genetic.best);
      Alcotest.(check bool) "best <= initial" true
        (r.Pimcomp.Genetic.best_fitness
        <= r.Pimcomp.Genetic.initial_best_fitness);
      Alcotest.(check int) "history length"
        (r.Pimcomp.Genetic.generations_run + 1)
        (List.length r.Pimcomp.Genetic.history);
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "global best non-increasing" true (b <= a);
            monotone rest
        | _ -> ()
      in
      monotone r.Pimcomp.Genetic.history;
      Alcotest.(check bool) "failed mutations non-negative" true
        (r.Pimcomp.Genetic.failed_mutations >= 0))
    Pimcomp.Mode.all

(* Ring-migration bookkeeping: the sub-population layout at island
   counts 1 and 2, populations that don't divide evenly, and the clamp
   that keeps every island at >= 2 individuals. *)
let test_island_layout () =
  let layout ~population islands =
    Pimcomp.Genetic.island_layout ~population
      { Pimcomp.Genetic.default_island_params with islands }
  in
  Alcotest.(check (array int)) "one island" [| 24 |] (layout ~population:24 1);
  Alcotest.(check (array int)) "two islands, even" [| 12; 12 |]
    (layout ~population:24 2);
  Alcotest.(check (array int)) "two islands, odd" [| 4; 3 |]
    (layout ~population:7 2);
  Alcotest.(check (array int)) "uneven split" [| 3; 2; 2 |]
    (layout ~population:7 3);
  Alcotest.(check (array int)) "clamped to population/2" [| 3; 2 |]
    (layout ~population:5 8);
  Alcotest.(check (array int)) "paper default" [| 25; 25; 25; 25 |]
    (layout ~population:100 4);
  (* every layout sums to the population with sizes within one of each
     other and >= 2 *)
  List.iter
    (fun (population, islands) ->
      let l = layout ~population islands in
      Alcotest.(check int)
        (Fmt.str "pop %d x %d islands sums" population islands)
        population
        (Array.fold_left ( + ) 0 l);
      let mx = Array.fold_left max 0 l and mn = Array.fold_left min max_int l in
      Alcotest.(check bool) "sizes within one" true (mx - mn <= 1);
      Alcotest.(check bool) "each island >= 2" true (mn >= 2))
    [ (2, 1); (5, 2); (7, 3); (11, 4); (100, 7); (9, 100) ]

(* An island run with migrations must not lose to the same islands
   without migration ever exchanging anything worse than the local
   worst: population sizes are preserved and the result is valid. *)
let test_island_uneven_population () =
  let table, cores = setup "tiny" 16 in
  let island =
    {
      Pimcomp.Genetic.islands = 3;
      migration_interval = 3;
      migration_size = 2;  (* clamped to min sub-population - 1 *)
      domains = Some 2;
    }
  in
  let params = { params with Pimcomp.Genetic.population = 7; iterations = 12 } in
  let r =
    island_optimize ~island ~params ~seed:5 ~mode:Pimcomp.Mode.High_throughput
      table cores
  in
  Alcotest.(check bool) "valid best" true
    (Pimcomp.Chromosome.is_valid r.Pimcomp.Genetic.best);
  Alcotest.(check int) "all generations run" 12
    r.Pimcomp.Genetic.generations_run

(* The tentpole determinism claim, as a qcheck property: for any seed,
   the island GA returns a bit-identical best fitness and history
   whether the islands run on 1 domain or fanned out — in both modes.
   [default_domains] is included so the host's real recommendation is
   exercised, plus a forced 4 so multi-domain runs happen even on
   single-core CI hosts. *)
let island_domain_independence =
  QCheck.Test.make ~name:"island GA independent of domain count" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let table, cores = setup "tiny" 16 in
      let params =
        { Pimcomp.Genetic.fast_params with population = 12; iterations = 10 }
      in
      let run mode domains =
        let island =
          {
            Pimcomp.Genetic.islands = 3;
            migration_interval = 4;
            migration_size = 1;
            domains = Some domains;
          }
        in
        island_optimize ~island ~params ~seed ~mode table cores
      in
      List.for_all
        (fun mode ->
          let base = run mode 1 in
          List.for_all
            (fun domains ->
              let r = run mode domains in
              r.Pimcomp.Genetic.best_fitness
              = base.Pimcomp.Genetic.best_fitness
              && r.Pimcomp.Genetic.history = base.Pimcomp.Genetic.history
              && r.Pimcomp.Genetic.evaluations
                 = base.Pimcomp.Genetic.evaluations)
            [ Pimutil.Domain_pool.default_domains (); 4 ])
        Pimcomp.Mode.all)

(* At an equal evaluation budget the island model should not lose badly
   to the single population (it usually wins; allow slack for the
   different RNG streams on this tiny problem). *)
let test_island_competitive () =
  let table, cores = setup "tiny" 16 in
  let single = optimize ~seed:41 ~mode:Pimcomp.Mode.High_throughput table cores in
  let island =
    island_optimize
      ~island:
        {
          Pimcomp.Genetic.islands = 2;
          migration_interval = 5;
          migration_size = 2;
          domains = None;
        }
      ~seed:41 ~mode:Pimcomp.Mode.High_throughput table cores
  in
  Alcotest.(check bool) "island <= single * 1.1" true
    (island.Pimcomp.Genetic.best_fitness
    <= single.Pimcomp.Genetic.best_fitness *. 1.1)

let () =
  Alcotest.run "genetic"
    [
      ( "ga",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "incremental equals full" `Quick
            test_incremental_equals_full;
          Alcotest.test_case "improves over initial" `Quick
            test_improves_over_initial;
          Alcotest.test_case "history monotone" `Quick test_history_monotone;
          Alcotest.test_case "seed never worse" `Quick test_seed_never_worse;
          Alcotest.test_case "invalid seed filtered" `Quick
            test_invalid_seed_filtered;
          Alcotest.test_case "patience" `Quick test_patience_stops_early;
          Alcotest.test_case "beats random search" `Quick
            test_ga_beats_random_search;
          Alcotest.test_case "random-search history curve" `Quick
            test_random_search_history_curve;
        ] );
      ( "rng-split",
        [
          Alcotest.test_case "deterministic" `Quick test_split_deterministic;
          Alcotest.test_case "independent streams" `Quick
            test_split_independent;
        ] );
      ( "islands",
        [
          Alcotest.test_case "smoke (2 islands)" `Quick test_island_smoke;
          Alcotest.test_case "layout bookkeeping" `Quick test_island_layout;
          Alcotest.test_case "uneven population" `Quick
            test_island_uneven_population;
          QCheck_alcotest.to_alcotest island_domain_independence;
          Alcotest.test_case "competitive with single population" `Quick
            test_island_competitive;
        ] );
    ]
