(* Tests for the genetic algorithm (Section IV-C): determinism,
   monotone improvement over the initial population, seed handling and
   the random-search ablation baseline. *)

let hw = Pimhw.Config.puma_like

let setup name size =
  let g = Nnir.Zoo.build ~input_size:size name in
  let table = Pimcomp.Partition.of_graph hw g in
  let core_count = Pimcomp.Partition.fit_core_count table in
  (table, core_count)

let params =
  { Pimcomp.Genetic.fast_params with population = 16; iterations = 25 }

let optimize ?seeds ~seed ~mode table core_count =
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let rng = Pimcomp.Rng.create ~seed in
  Pimcomp.Genetic.optimize ~params ?seeds ~mode ~timing ~rng table ~core_count
    ~max_node_num_in_core:16 ()

let test_deterministic () =
  let table, cores = setup "tiny" 16 in
  let r1 = optimize ~seed:7 ~mode:Pimcomp.Mode.High_throughput table cores in
  let r2 = optimize ~seed:7 ~mode:Pimcomp.Mode.High_throughput table cores in
  Alcotest.(check bool) "same fitness for same seed" true
    (r1.Pimcomp.Genetic.best_fitness = r2.Pimcomp.Genetic.best_fitness);
  Alcotest.(check bool) "same history for same seed" true
    (r1.Pimcomp.Genetic.history = r2.Pimcomp.Genetic.history)

let test_incremental_equals_full () =
  (* Incremental and Full evaluation share their arithmetic, so for a
     fixed seed the whole search trajectory — not just the final best —
     must be bit-identical. *)
  let table, cores = setup "squeezenet" 56 in
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let run evaluation mode =
    Pimcomp.Genetic.optimize ~params ~evaluation ~mode ~timing
      ~rng:(Pimcomp.Rng.create ~seed:31)
      table ~core_count:cores ~max_node_num_in_core:16 ()
  in
  List.iter
    (fun mode ->
      let inc = run Pimcomp.Genetic.Incremental mode in
      let full = run Pimcomp.Genetic.Full mode in
      Alcotest.(check bool) "identical best fitness" true
        (inc.Pimcomp.Genetic.best_fitness = full.Pimcomp.Genetic.best_fitness);
      Alcotest.(check bool) "identical history" true
        (inc.Pimcomp.Genetic.history = full.Pimcomp.Genetic.history);
      Alcotest.(check int) "identical evaluation count"
        full.Pimcomp.Genetic.evaluations inc.Pimcomp.Genetic.evaluations)
    Pimcomp.Mode.all

let test_improves_over_initial () =
  let table, cores = setup "tiny" 16 in
  List.iter
    (fun mode ->
      let r = optimize ~seed:11 ~mode table cores in
      Alcotest.(check bool) "best <= initial" true
        (r.Pimcomp.Genetic.best_fitness
        <= r.Pimcomp.Genetic.initial_best_fitness +. 1e-9);
      Alcotest.(check bool) "best is valid" true
        (Pimcomp.Chromosome.is_valid r.Pimcomp.Genetic.best))
    Pimcomp.Mode.all

let test_history_monotone () =
  let table, cores = setup "tiny" 16 in
  let r = optimize ~seed:13 ~mode:Pimcomp.Mode.High_throughput table cores in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "history non-increasing" true (b <= a +. 1e-9);
        check rest
    | _ -> ()
  in
  check r.Pimcomp.Genetic.history;
  Alcotest.(check int) "history length"
    (r.Pimcomp.Genetic.generations_run + 1)
    (List.length r.Pimcomp.Genetic.history)

let test_seed_never_worse () =
  (* seeding with the PUMA-like individual means the result can only be
     at least as good as that seed *)
  let table, cores = setup "squeezenet" 56 in
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let puma =
    Pimcomp.Puma_baseline.build table ~core_count:cores
      ~max_node_num_in_core:16
  in
  let puma_fitness = Pimcomp.Fitness.ht timing puma in
  let r =
    optimize ~seeds:[ puma ] ~seed:17 ~mode:Pimcomp.Mode.High_throughput table
      cores
  in
  Alcotest.(check bool) "GA <= PUMA seed" true
    (r.Pimcomp.Genetic.best_fitness <= puma_fitness +. 1e-9)

let test_invalid_seed_filtered () =
  let table, cores = setup "tiny" 16 in
  (* an empty chromosome violates the every-node-mapped invariant and
     must be dropped rather than crash the GA *)
  let bogus =
    Pimcomp.Chromosome.create_empty table ~core_count:cores
      ~max_node_num_in_core:16
  in
  let r =
    optimize ~seeds:[ bogus ] ~seed:19 ~mode:Pimcomp.Mode.High_throughput table
      cores
  in
  Alcotest.(check bool) "result valid" true
    (Pimcomp.Chromosome.is_valid r.Pimcomp.Genetic.best)

let test_patience_stops_early () =
  let table, cores = setup "tiny" 16 in
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let rng = Pimcomp.Rng.create ~seed:23 in
  let r =
    Pimcomp.Genetic.optimize
      ~params:{ params with iterations = 10_000; patience = Some 5 }
      ~mode:Pimcomp.Mode.High_throughput ~timing ~rng table ~core_count:cores
      ~max_node_num_in_core:16 ()
  in
  Alcotest.(check bool) "stopped well before the cap" true
    (r.Pimcomp.Genetic.generations_run < 2_000)

let test_ga_beats_random_search () =
  (* with the same evaluation budget the mutation-driven GA should be at
     least as good as pure random initialisation *)
  let table, cores = setup "tiny" 16 in
  let timing = Pimhw.Timing.create ~parallelism:8 hw in
  let ga =
    Pimcomp.Genetic.optimize ~params ~mode:Pimcomp.Mode.High_throughput
      ~timing
      ~rng:(Pimcomp.Rng.create ~seed:29)
      table ~core_count:cores ~max_node_num_in_core:16 ()
  in
  let rs =
    Pimcomp.Genetic.random_search ~params ~mode:Pimcomp.Mode.High_throughput
      ~timing
      ~rng:(Pimcomp.Rng.create ~seed:29)
      table ~core_count:cores ~max_node_num_in_core:16 ()
  in
  Alcotest.(check bool) "GA <= random search * 1.05" true
    (ga.Pimcomp.Genetic.best_fitness
    <= rs.Pimcomp.Genetic.best_fitness *. 1.05)

let () =
  Alcotest.run "genetic"
    [
      ( "ga",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "incremental equals full" `Quick
            test_incremental_equals_full;
          Alcotest.test_case "improves over initial" `Quick
            test_improves_over_initial;
          Alcotest.test_case "history monotone" `Quick test_history_monotone;
          Alcotest.test_case "seed never worse" `Quick test_seed_never_worse;
          Alcotest.test_case "invalid seed filtered" `Quick
            test_invalid_seed_filtered;
          Alcotest.test_case "patience" `Quick test_patience_stops_early;
          Alcotest.test_case "beats random search" `Quick
            test_ga_beats_random_search;
        ] );
    ]
