(* Tests for the hardware abstraction: Table I consistency, the
   CACTI-like and Orion-like model calibration, mesh NoC geometry, and
   timing derivations. *)

let hw = Pimhw.Config.puma_like

let close ?(eps = 1e-6) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %f, got %f" msg expected actual

(* --- config --------------------------------------------------------------- *)

let test_table1_core_power () =
  (* Table I reports 1270.56 mW; the component rows sum to 1270.50
     (rounding in the paper's table) *)
  close ~eps:0.01 "core power" 1270.50 (Pimhw.Config.core_power_mw hw);
  close ~eps:0.001 "core area" 1.013 (Pimhw.Config.core_area_mm2 hw)

let test_table1_chip () =
  (* chip power ~56.79 W and area ~62.92 mm^2 per Table I *)
  let p = Pimhw.Config.chip_power_mw hw /. 1000.0 in
  let a = Pimhw.Config.chip_area_mm2 hw in
  if p < 55.0 || p > 59.0 then Alcotest.failf "chip power %f W off" p;
  if a < 60.0 || a > 67.0 then Alcotest.failf "chip area %f mm2 off" a

let test_validate_rejects () =
  (match Pimhw.Config.validate { hw with core_count = 0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "core_count 0 accepted");
  (match Pimhw.Config.validate { hw with static_fraction = 1.5 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "static_fraction 1.5 accepted");
  match Pimhw.Config.validate { hw with t_mvm_ns = -1.0 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative T_MVM accepted"

let test_derived_counts () =
  Alcotest.(check int) "total crossbars" (36 * 64)
    (Pimhw.Config.total_crossbars hw);
  Alcotest.(check int) "xbar capacity" (128 * 128) (Pimhw.Config.xbar_capacity hw)

(* --- cacti ---------------------------------------------------------------- *)

let test_cacti_calibration () =
  let local = Pimhw.Cacti_model.evaluate ~capacity_bytes:(64 * 1024) in
  close ~eps:1e-9 "local area anchor" 0.085 local.Pimhw.Cacti_model.area_mm2;
  close ~eps:1e-9 "local leakage anchor" (18.0 *. 0.30)
    local.Pimhw.Cacti_model.leakage_power_mw

let test_cacti_scaling () =
  let small = Pimhw.Cacti_model.evaluate ~capacity_bytes:(16 * 1024) in
  let large = Pimhw.Cacti_model.evaluate ~capacity_bytes:(256 * 1024) in
  (* energy scales with sqrt capacity: 4x capacity -> 2x energy *)
  close ~eps:1e-9 "sqrt energy scaling"
    (small.Pimhw.Cacti_model.read_energy_pj_per_byte *. 4.0)
    large.Pimhw.Cacti_model.read_energy_pj_per_byte;
  (* leakage and area scale linearly *)
  close ~eps:1e-9 "linear leakage scaling"
    (small.Pimhw.Cacti_model.leakage_power_mw *. 16.0)
    large.Pimhw.Cacti_model.leakage_power_mw;
  if
    large.Pimhw.Cacti_model.write_energy_pj_per_byte
    <= large.Pimhw.Cacti_model.read_energy_pj_per_byte
  then Alcotest.fail "writes should cost more than reads"

let test_cacti_rejects () =
  match Pimhw.Cacti_model.evaluate ~capacity_bytes:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero capacity accepted"

(* --- orion ---------------------------------------------------------------- *)

let test_orion_calibration () =
  let r = Pimhw.Orion_model.evaluate () in
  close ~eps:1e-9 "flit energy anchor" 10.0 r.Pimhw.Orion_model.energy_per_flit_pj;
  close ~eps:1e-9 "router area anchor" 0.14 r.Pimhw.Orion_model.area_mm2

let test_orion_scaling () =
  let narrow =
    Pimhw.Orion_model.evaluate
      ~params:{ Pimhw.Orion_model.default_params with flit_bits = 32 }
      ()
  in
  let wide =
    Pimhw.Orion_model.evaluate
      ~params:{ Pimhw.Orion_model.default_params with flit_bits = 128 }
      ()
  in
  if
    narrow.Pimhw.Orion_model.energy_per_flit_pj
    >= wide.Pimhw.Orion_model.energy_per_flit_pj
  then Alcotest.fail "wider flits should cost more energy"

(* qcheck monotonicity: every Cacti output is non-decreasing in
   capacity — the synthesiser's pre-filters and config scaling lean on
   this (a bigger scratchpad can never get cheaper). *)
let cacti_monotone =
  QCheck.Test.make ~name:"cacti monotone in capacity" ~count:300
    QCheck.(pair (int_range 1 (1 lsl 22)) (int_range 1 (1 lsl 22)))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let r_lo = Pimhw.Cacti_model.evaluate ~capacity_bytes:lo in
      let r_hi = Pimhw.Cacti_model.evaluate ~capacity_bytes:hi in
      r_lo.Pimhw.Cacti_model.read_energy_pj_per_byte
      <= r_hi.Pimhw.Cacti_model.read_energy_pj_per_byte
      && r_lo.Pimhw.Cacti_model.write_energy_pj_per_byte
         <= r_hi.Pimhw.Cacti_model.write_energy_pj_per_byte
      && r_lo.Pimhw.Cacti_model.leakage_power_mw
         <= r_hi.Pimhw.Cacti_model.leakage_power_mw
      && r_lo.Pimhw.Cacti_model.area_mm2 <= r_hi.Pimhw.Cacti_model.area_mm2
      && r_lo.Pimhw.Cacti_model.access_latency_ns
         <= r_hi.Pimhw.Cacti_model.access_latency_ns)

(* Orion: energy, leakage and area are non-decreasing in port count and
   flit width (and leakage/area in buffer depth). *)
let orion_params =
  QCheck.make
    ~print:(fun (p : Pimhw.Orion_model.params) ->
      Printf.sprintf "ports=%d vc=%d buf=%d flit=%d" p.Pimhw.Orion_model.ports
        p.Pimhw.Orion_model.virtual_channels p.Pimhw.Orion_model.buffer_depth_flits
        p.Pimhw.Orion_model.flit_bits)
    QCheck.Gen.(
      map
        (fun (ports, vc, buf, flit) ->
          {
            Pimhw.Orion_model.ports;
            virtual_channels = vc;
            buffer_depth_flits = buf;
            flit_bits = flit;
          })
        (quad (int_range 2 16) (int_range 1 8) (int_range 1 16)
           (int_range 8 512)))

let orion_monotone =
  QCheck.Test.make ~name:"orion monotone in ports/flit/buffers" ~count:300
    QCheck.(pair orion_params (triple (int_range 0 8) (int_range 0 256) (int_range 0 8)))
    (fun (p, (dports, dflit, dbuf)) ->
      let bigger =
        {
          p with
          Pimhw.Orion_model.ports = p.Pimhw.Orion_model.ports + dports;
          flit_bits = p.Pimhw.Orion_model.flit_bits + dflit;
          buffer_depth_flits = p.Pimhw.Orion_model.buffer_depth_flits + dbuf;
        }
      in
      let r = Pimhw.Orion_model.evaluate ~params:p () in
      let r' = Pimhw.Orion_model.evaluate ~params:bigger () in
      r.Pimhw.Orion_model.energy_per_flit_pj
      <= r'.Pimhw.Orion_model.energy_per_flit_pj
      && r.Pimhw.Orion_model.leakage_power_mw
         <= r'.Pimhw.Orion_model.leakage_power_mw
      && r.Pimhw.Orion_model.area_mm2 <= r'.Pimhw.Orion_model.area_mm2)

(* --- design space --------------------------------------------------------- *)

(* Config.validate must accept every point the synth enumerator can
   emit: axes values are arbitrary positives, not just the defaults. *)
let axis_gen = QCheck.Gen.(list_size (int_range 1 4) (int_range 1 512))

let design_axes_gen =
  QCheck.Gen.(
    map
      (fun (a, b, c, d, e) ->
        let dedup l = List.sort_uniq compare l in
        {
          Pimhw.Design_space.xbar_size_axis = dedup a;
          xbars_per_core_axis = dedup b;
          core_count_axis = dedup c;
          local_memory_kb_axis = dedup d;
          vfus_per_core_axis = dedup e;
        })
      (tup5 axis_gen axis_gen axis_gen axis_gen axis_gen))

let enumerator_points_validate =
  QCheck.Test.make ~name:"Config.validate accepts every enumerated point"
    ~count:60
    (QCheck.make design_axes_gen)
    (fun axes ->
      let points = Pimhw.Design_space.enumerate axes in
      List.length points = Pimhw.Design_space.cardinality axes
      && List.for_all
           (fun p ->
             Pimhw.Config.validate (Pimhw.Design_space.to_config p);
             true)
           points)

(* --- noc ------------------------------------------------------------------ *)

let test_mesh_geometry () =
  let noc = Pimhw.Noc.create ~core_count:36 in
  Alcotest.(check int) "6x6 cols" 6 (Pimhw.Noc.cols noc);
  Alcotest.(check int) "6x6 rows" 6 (Pimhw.Noc.rows noc);
  Alcotest.(check (pair int int)) "coords of 7" (1, 1) (Pimhw.Noc.coords noc 7);
  Alcotest.(check int) "corner hops" 10 (Pimhw.Noc.hops noc ~src:0 ~dst:35);
  Alcotest.(check int) "same core" 0 (Pimhw.Noc.hops noc ~src:9 ~dst:9)

let test_mesh_routes () =
  let noc = Pimhw.Noc.create ~core_count:16 in
  let route = Pimhw.Noc.route noc ~src:0 ~dst:15 in
  Alcotest.(check int) "route length = hops"
    (Pimhw.Noc.hops noc ~src:0 ~dst:15)
    (List.length route);
  (* XY routing: x-links first *)
  (match route with
  | { Pimhw.Noc.from_core = 0; to_core = 1 } :: _ -> ()
  | _ -> Alcotest.fail "XY route should start along x");
  Alcotest.(check (list (pair int int))) "route is connected" []
    (List.filter_map
       (fun (a, b) -> if a <> b then Some (a, b) else None)
       (let rec pairs = function
          | { Pimhw.Noc.to_core = a; _ } :: ({ Pimhw.Noc.from_core = b; _ } :: _ as rest)
            ->
              (a, b) :: pairs rest
          | _ -> []
        in
        pairs route))

let test_non_square_mesh () =
  let noc = Pimhw.Noc.create ~core_count:7 in
  Alcotest.(check int) "7 cores fit" 7 (Pimhw.Noc.core_count noc);
  (* every core must have valid coordinates *)
  for c = 0 to 6 do
    let x, y = Pimhw.Noc.coords noc c in
    Alcotest.(check (option int)) "coords invert" (Some c)
      (Pimhw.Noc.core_at noc ~x ~y)
  done

let test_ragged_mesh_routes () =
  (* core_count = 5 is a 3-wide mesh whose bottom row holds only cores 3
     and 4; position (2,1) is a hole.  Dimension-ordered XY routing from
     core 3 to core 2 would turn at that hole, so the router must fall
     back to the YX corner.  Every link endpoint has to be a real core. *)
  let noc = Pimhw.Noc.create ~core_count:5 in
  for src = 0 to 4 do
    for dst = 0 to 4 do
      let route = Pimhw.Noc.route noc ~src ~dst in
      Alcotest.(check int)
        (Fmt.str "route %d->%d length" src dst)
        (Pimhw.Noc.hops noc ~src ~dst)
        (List.length route);
      List.iter
        (fun { Pimhw.Noc.from_core; to_core } ->
          if from_core < 0 || from_core >= 5 || to_core < 0 || to_core >= 5
          then
            Alcotest.failf "route %d->%d crosses phantom core (%d->%d)" src
              dst from_core to_core)
        route
    done
  done

let test_global_memory_route () =
  (* hops_to_global_memory must agree with the explicit route to the
     controller port beyond the top-left core *)
  List.iter
    (fun core_count ->
      let noc = Pimhw.Noc.create ~core_count in
      for core = 0 to core_count - 1 do
        let route = Pimhw.Noc.route_to_global_memory noc ~core in
        Alcotest.(check int)
          (Fmt.str "n=%d core %d global hops" core_count core)
          (Pimhw.Noc.hops_to_global_memory noc ~core)
          (List.length route);
        match List.rev route with
        | { Pimhw.Noc.from_core = 0; to_core } :: _
          when to_core = Pimhw.Noc.global_memory_port ->
            ()
        | _ -> Alcotest.failf "n=%d core %d: last link is not 0->port"
                 core_count core
      done)
    [ 1; 5; 7; 16; 36 ]

let mesh_hops_symmetric =
  QCheck.Test.make ~name:"mesh hops symmetric and triangle" ~count:300
    QCheck.(triple (int_range 1 49) (int_range 0 48) (int_range 0 48))
    (fun (n, a, b) ->
      let noc = Pimhw.Noc.create ~core_count:n in
      let a = a mod n and b = b mod n in
      let h = Pimhw.Noc.hops noc ~src:a ~dst:b in
      let route = Pimhw.Noc.route noc ~src:a ~dst:b in
      h = Pimhw.Noc.hops noc ~src:b ~dst:a
      && h >= 0
      && List.length route = h
      && List.for_all
           (fun { Pimhw.Noc.from_core; to_core } ->
             from_core >= 0 && from_core < n && to_core >= 0 && to_core < n)
           route)

(* --- timing --------------------------------------------------------------- *)

let test_timing_interval () =
  let t = Pimhw.Timing.create ~parallelism:20 hw in
  close "t_interval" (hw.Pimhw.Config.t_mvm_ns /. 20.0)
    t.Pimhw.Timing.t_interval_ns;
  (* f(n): below saturation one cycle is T_MVM, above it n*T_interval *)
  close "f(1)" hw.Pimhw.Config.t_mvm_ns
    (Pimhw.Timing.operation_cycle_ns t ~ags_in_core:1);
  close "f(20)" hw.Pimhw.Config.t_mvm_ns
    (Pimhw.Timing.operation_cycle_ns t ~ags_in_core:20);
  close "f(40)" (2.0 *. hw.Pimhw.Config.t_mvm_ns)
    (Pimhw.Timing.operation_cycle_ns t ~ags_in_core:40)

let test_timing_vec_noc () =
  let t = Pimhw.Timing.create ~parallelism:4 hw in
  close "vec 1 elem" hw.Pimhw.Config.t_core_cycle_ns
    (Pimhw.Timing.vec_ns t ~elements:1);
  close "vec full width" hw.Pimhw.Config.t_core_cycle_ns
    (Pimhw.Timing.vec_ns t ~elements:(12 * 4));
  close "vec 2 cycles" (2.0 *. hw.Pimhw.Config.t_core_cycle_ns)
    (Pimhw.Timing.vec_ns t ~elements:((12 * 4) + 1));
  let one_flit = Pimhw.Timing.noc_ns t ~hops:2 ~bytes:4 in
  let many_flits = Pimhw.Timing.noc_ns t ~hops:2 ~bytes:800 in
  if many_flits <= one_flit then Alcotest.fail "serialisation should add time"

let test_energy_model () =
  let em = Pimhw.Energy_model.create hw in
  (* one crossbar MVM: (1221.7 mW * 0.7 / 64) * 100 ns ~ 1336 pJ *)
  let expected = 1221.7 *. 0.7 /. 64.0 *. 100.0 in
  close ~eps:1.0 "mvm energy" expected em.Pimhw.Energy_model.mvm_energy_pj;
  if em.Pimhw.Energy_model.global_read_pj_per_byte
     <= em.Pimhw.Energy_model.local_read_pj_per_byte
  then Alcotest.fail "global accesses should cost more than local";
  let small = Pimhw.Energy_model.message_energy_pj em ~hops:1 ~bytes:8 in
  let big = Pimhw.Energy_model.message_energy_pj em ~hops:4 ~bytes:640 in
  if big <= small then Alcotest.fail "message energy should scale"

let () =
  Alcotest.run "pimhw"
    [
      ( "config",
        [
          Alcotest.test_case "core power/area" `Quick test_table1_core_power;
          Alcotest.test_case "chip totals" `Quick test_table1_chip;
          Alcotest.test_case "validation" `Quick test_validate_rejects;
          Alcotest.test_case "derived counts" `Quick test_derived_counts;
        ] );
      ( "cacti",
        [
          Alcotest.test_case "calibration" `Quick test_cacti_calibration;
          Alcotest.test_case "scaling laws" `Quick test_cacti_scaling;
          Alcotest.test_case "rejects" `Quick test_cacti_rejects;
          QCheck_alcotest.to_alcotest cacti_monotone;
        ] );
      ( "orion",
        [
          Alcotest.test_case "calibration" `Quick test_orion_calibration;
          Alcotest.test_case "scaling" `Quick test_orion_scaling;
          QCheck_alcotest.to_alcotest orion_monotone;
        ] );
      ( "design_space",
        [ QCheck_alcotest.to_alcotest enumerator_points_validate ] );
      ( "noc",
        [
          Alcotest.test_case "mesh geometry" `Quick test_mesh_geometry;
          Alcotest.test_case "routes" `Quick test_mesh_routes;
          Alcotest.test_case "non-square" `Quick test_non_square_mesh;
          Alcotest.test_case "ragged routes" `Quick test_ragged_mesh_routes;
          Alcotest.test_case "global memory route" `Quick
            test_global_memory_route;
          QCheck_alcotest.to_alcotest mesh_hops_symmetric;
        ] );
      ( "timing",
        [
          Alcotest.test_case "interval and f(n)" `Quick test_timing_interval;
          Alcotest.test_case "vec and noc" `Quick test_timing_vec_noc;
          Alcotest.test_case "energy model" `Quick test_energy_model;
        ] );
    ]
