(* End-to-end integration tests: compile + simulate real networks in
   both modes with both mapping strategies, and check the paper's
   headline relationships hold on the small configurations the test
   suite can afford. *)

let hw = Pimhw.Config.puma_like

let compile_and_run ?(parallelism = 8) ~mode ~strategy name size =
  let g = Nnir.Zoo.build ~input_size:size name in
  let options =
    { Pimcomp.Compile.default_options with mode; parallelism; strategy }
  in
  let r = Pimcomp.Compile.compile ~options hw g in
  let m = Pimsim.Engine.run ~parallelism hw r.Pimcomp.Compile.program in
  (r, m)

let ga = Pimcomp.Compile.Genetic_algorithm Pimcomp.Genetic.fast_params

let test_all_modes_run name size =
  List.iter
    (fun mode ->
      List.iter
        (fun strategy ->
          let r, m = compile_and_run ~mode ~strategy name size in
          Alcotest.(check bool)
            (Fmt.str "%s %a %s completes" name Pimcomp.Mode.pp mode
               (Pimcomp.Compile.mapping_strategy_name strategy))
            false m.Pimsim.Metrics.deadlocked;
          Alcotest.(check int) "all instructions executed"
            m.Pimsim.Metrics.instrs_total m.Pimsim.Metrics.instrs_executed;
          Alcotest.(check bool) "positive makespan" true
            (m.Pimsim.Metrics.makespan_ns > 0.0);
          Alcotest.(check bool) "fitness positive" true
            (r.Pimcomp.Compile.fitness > 0.0))
        [ ga; Pimcomp.Compile.Puma_like ])
    Pimcomp.Mode.all

let test_tiny () = test_all_modes_run "tiny" 16
let test_lenet () = test_all_modes_run "lenet" 16
let test_squeezenet () = test_all_modes_run "squeezenet" 48
let test_resnet18 () = test_all_modes_run "resnet18" 40
let test_mobilenet () = test_all_modes_run "mobilenet" 32
let test_densenet () = test_all_modes_run "densenet121" 33

let test_isaac_preset () =
  (* the same compiler retargets the ISAAC-flavoured machine unchanged *)
  let hw = Pimhw.Config.isaac_like in
  Pimhw.Config.validate hw;
  let g = Nnir.Zoo.build ~input_size:48 "squeezenet" in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      parallelism = 8 }
  in
  let r = Pimcomp.Compile.compile ~options hw g in
  let m = Pimsim.Engine.run ~parallelism:8 hw r.Pimcomp.Compile.program in
  Alcotest.(check bool) "completes" false m.Pimsim.Metrics.deadlocked

let test_energy_objective_end_to_end () =
  let g = Nnir.Zoo.build ~input_size:48 "squeezenet" in
  let run objective =
    let options =
      { Pimcomp.Compile.default_options with
        mode = Pimcomp.Mode.Low_latency;
        parallelism = 8;
        objective;
        strategy = Pimcomp.Compile.Genetic_algorithm Pimcomp.Genetic.fast_params }
    in
    let r = Pimcomp.Compile.compile ~options hw g in
    let m = Pimsim.Engine.run ~parallelism:8 hw r.Pimcomp.Compile.program in
    Pimsim.Metrics.total_pj m.Pimsim.Metrics.energy
  in
  let e_time = run Pimcomp.Fitness.Minimize_time in
  let e_edp = run Pimcomp.Fitness.Minimize_energy_delay in
  (* the energy-aware objective should not cost substantially more
     energy; typically it saves some *)
  Alcotest.(check bool) "EDP objective energy sane" true
    (e_edp <= e_time *. 1.15)

let test_ga_not_worse_than_puma () =
  (* with the PUMA individual in the seed population, the GA's fitness
     estimate can never be worse *)
  List.iter
    (fun mode ->
      let r_ga, _ = compile_and_run ~mode ~strategy:ga "squeezenet" 48 in
      let r_puma, _ =
        compile_and_run ~mode ~strategy:Pimcomp.Compile.Puma_like "squeezenet"
          48
      in
      Alcotest.(check bool)
        (Fmt.str "GA fitness <= PUMA fitness (%a)" Pimcomp.Mode.pp mode)
        true
        (r_ga.Pimcomp.Compile.fitness
        <= r_puma.Pimcomp.Compile.fitness +. 1e-6))
    Pimcomp.Mode.all

let test_ll_latency_below_ht_makespan () =
  (* the whole point of LL mode: a single inference finishes sooner than
     under the inference-granular HT pipeline *)
  let _, ht = compile_and_run ~mode:Pimcomp.Mode.High_throughput ~strategy:ga
      "squeezenet" 48
  in
  let _, ll = compile_and_run ~mode:Pimcomp.Mode.Low_latency ~strategy:ga
      "squeezenet" 48
  in
  Alcotest.(check bool) "LL latency < HT latency" true
    (ll.Pimsim.Metrics.latency_ns < ht.Pimsim.Metrics.latency_ns)

let test_memory_reuse_hierarchy_end_to_end () =
  let g = Nnir.Zoo.build ~input_size:48 "squeezenet" in
  let run allocator mode =
    let options =
      { Pimcomp.Compile.default_options with
        mode; parallelism = 8; allocator; strategy = Pimcomp.Compile.Puma_like }
    in
    let r = Pimcomp.Compile.compile ~options hw g in
    r.Pimcomp.Compile.program.Pimcomp.Isa.memory
  in
  List.iter
    (fun mode ->
      let peak m = Array.fold_left max 0 m.Pimcomp.Isa.local_peak_bytes in
      let naive = run Pimcomp.Memalloc.Naive mode in
      let add = run Pimcomp.Memalloc.Add_reuse mode in
      let ag = run Pimcomp.Memalloc.Ag_reuse mode in
      Alcotest.(check bool)
        (Fmt.str "peak hierarchy (%a)" Pimcomp.Mode.pp mode)
        true
        (peak ag <= peak add && peak add <= peak naive);
      (* in HT mode the naive discipline must pay more global traffic *)
      if mode = Pimcomp.Mode.High_throughput then
        Alcotest.(check bool) "naive spills more" true
          (naive.Pimcomp.Isa.spill_bytes >= ag.Pimcomp.Isa.spill_bytes))
    Pimcomp.Mode.all

let test_parallelism_speeds_up_ht () =
  let _, m4 = compile_and_run ~parallelism:4 ~mode:Pimcomp.Mode.High_throughput
      ~strategy:Pimcomp.Compile.Puma_like "squeezenet" 48
  in
  let _, m32 =
    compile_and_run ~parallelism:32 ~mode:Pimcomp.Mode.High_throughput
      ~strategy:Pimcomp.Compile.Puma_like "squeezenet" 48
  in
  Alcotest.(check bool) "P=32 faster than P=4" true
    (m32.Pimsim.Metrics.makespan_ns < m4.Pimsim.Metrics.makespan_ns)

let test_stage_times_recorded () =
  let r, _ = compile_and_run ~mode:Pimcomp.Mode.High_throughput ~strategy:ga
      "tiny" 16
  in
  let s = r.Pimcomp.Compile.stage_seconds in
  Alcotest.(check bool) "total = sum of stages" true
    (abs_float
       (s.Pimcomp.Compile.total
       -. (s.Pimcomp.Compile.partitioning
          +. s.Pimcomp.Compile.replicating_mapping
          +. s.Pimcomp.Compile.scheduling
          +. s.Pimcomp.Compile.verification))
    < 1e-9);
  Alcotest.(check bool) "stages non-negative" true
    (s.Pimcomp.Compile.partitioning >= 0.0
    && s.Pimcomp.Compile.replicating_mapping >= 0.0
    && s.Pimcomp.Compile.scheduling >= 0.0
    && s.Pimcomp.Compile.verification >= 0.0)

let test_report_renders () =
  let r, m = compile_and_run ~mode:Pimcomp.Mode.Low_latency ~strategy:ga
      "tiny" 16
  in
  let text = Fmt.str "%a@.%a" Pimcomp.Report.pp_summary r Pimsim.Metrics.pp m in
  Alcotest.(check bool) "report mentions network" true
    (String.length text > 100)

let test_energy_breakdown_consistent () =
  let _, m = compile_and_run ~mode:Pimcomp.Mode.High_throughput ~strategy:ga
      "lenet" 16
  in
  let e = m.Pimsim.Metrics.energy in
  let total = Pimsim.Metrics.total_pj e in
  Alcotest.(check bool) "total = dynamic + static" true
    (abs_float
       (total -. (Pimsim.Metrics.dynamic_pj e +. Pimsim.Metrics.static_pj e))
    < 1e-6);
  Alcotest.(check bool) "every component non-negative" true
    (e.Pimsim.Metrics.mvm_pj >= 0.0
    && e.Pimsim.Metrics.vec_pj >= 0.0
    && e.Pimsim.Metrics.local_mem_pj >= 0.0
    && e.Pimsim.Metrics.global_mem_pj >= 0.0
    && e.Pimsim.Metrics.noc_pj >= 0.0)

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "tiny" `Quick test_tiny;
          Alcotest.test_case "lenet" `Quick test_lenet;
          Alcotest.test_case "squeezenet" `Slow test_squeezenet;
          Alcotest.test_case "resnet18" `Slow test_resnet18;
          Alcotest.test_case "mobilenet" `Slow test_mobilenet;
          Alcotest.test_case "densenet121" `Slow test_densenet;
          Alcotest.test_case "isaac preset" `Slow test_isaac_preset;
          Alcotest.test_case "energy objective" `Slow
            test_energy_objective_end_to_end;
        ] );
      ( "paper-relationships",
        [
          Alcotest.test_case "GA never worse" `Slow test_ga_not_worse_than_puma;
          Alcotest.test_case "LL beats HT latency" `Slow
            test_ll_latency_below_ht_makespan;
          Alcotest.test_case "memory reuse hierarchy" `Slow
            test_memory_reuse_hierarchy_end_to_end;
          Alcotest.test_case "parallelism helps" `Slow
            test_parallelism_speeds_up_ht;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "stage times" `Quick test_stage_times_recorded;
          Alcotest.test_case "report renders" `Quick test_report_renders;
          Alcotest.test_case "energy consistent" `Quick
            test_energy_breakdown_consistent;
        ] );
    ]
