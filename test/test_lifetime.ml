(* Tests for the lifetime-aware buffer placement optimiser: plan
   determinism, placement never worse than AG-reuse, planned spilling
   under a tight scratchpad, the spill budget, and text round-trips of
   lifetime programs (freeag trace events, rpeaks). *)

let layout_of ~name ~mode:_ =
  let graph = Nnir.Zoo.build name ~input_size:(Nnir.Zoo.min_input_size name) in
  (graph, Pimhw.Config.default)

let compile ?(config = Pimhw.Config.default) ~allocator ~mode name =
  let graph, _ = layout_of ~name ~mode in
  let options =
    {
      Pimcomp.Compile.default_options with
      mode;
      allocator;
      strategy = Pimcomp.Compile.Puma_like;
    }
  in
  (graph, Pimcomp.Compile.compile ~options config graph)

let modes = [ Pimcomp.Mode.High_throughput; Pimcomp.Mode.Low_latency ]

let resident (p : Pimcomp.Isa.t) =
  p.Pimcomp.Isa.memory.Pimcomp.Isa.local_resident_peak_bytes

(* Every strategy's compiled program — lifetime included — passes the
   full static verifier, whose replay independently recomputes peaks
   (and, for lifetime, the whole placement plan). *)
let test_all_strategies_verify () =
  List.iter
    (fun name ->
      List.iter
        (fun mode ->
          List.iter
            (fun allocator ->
              let graph, r = compile ~allocator ~mode name in
              Alcotest.(check (list string))
                (Fmt.str "%s %s %s verifies" name
                   (Pimcomp.Mode.to_string mode)
                   (Pimcomp.Memalloc.strategy_name allocator))
                []
                (List.map
                   (Fmt.str "%a" Pimcomp.Verify.pp_violation)
                   (Pimcomp.Verify.run ~graph ~config:Pimhw.Config.default
                      r.Pimcomp.Compile.program)))
            Pimcomp.Memalloc.[ Naive; Add_reuse; Ag_reuse; Lifetime ])
        modes)
    [ "tiny"; "lenet" ]

let test_not_worse_than_ag_reuse () =
  List.iter
    (fun name ->
      List.iter
        (fun mode ->
          let _, ag = compile ~allocator:Pimcomp.Memalloc.Ag_reuse ~mode name in
          let _, lt = compile ~allocator:Pimcomp.Memalloc.Lifetime ~mode name in
          let sum p = Array.fold_left ( + ) 0 (resident p) in
          let label =
            Fmt.str "%s %s" name (Pimcomp.Mode.to_string mode)
          in
          Alcotest.(check bool)
            (label ^ ": lifetime footprint <= AG-reuse")
            true
            (sum lt.Pimcomp.Compile.program <= sum ag.Pimcomp.Compile.program))
        modes)
    [ "tiny"; "lenet"; "squeezenet" ]

let test_freeag_only_under_lifetime () =
  let has_freeag p =
    Array.exists
      (function Pimcomp.Isa.Free_ag_slot _ -> true | _ -> false)
      p.Pimcomp.Isa.mem_trace
  in
  let _, ag =
    compile ~allocator:Pimcomp.Memalloc.Ag_reuse
      ~mode:Pimcomp.Mode.Low_latency "tiny"
  in
  let _, lt =
    compile ~allocator:Pimcomp.Memalloc.Lifetime
      ~mode:Pimcomp.Mode.Low_latency "tiny"
  in
  Alcotest.(check bool) "legacy trace has no freeag" false
    (has_freeag ag.Pimcomp.Compile.program);
  Alcotest.(check bool) "lifetime trace has freeag deaths" true
    (has_freeag lt.Pimcomp.Compile.program)

let test_plan_determinism () =
  let _, lt =
    compile ~allocator:Pimcomp.Memalloc.Lifetime
      ~mode:Pimcomp.Mode.High_throughput "lenet"
  in
  let p = lt.Pimcomp.Compile.program in
  let plan () =
    Pimcomp.Lifetime.plan_of_trace ~core_count:p.Pimcomp.Isa.core_count
      ~capacity:(Some Pimhw.Config.default.Pimhw.Config.local_memory_bytes)
      p.Pimcomp.Isa.mem_trace
  in
  Alcotest.(check bool) "same trace, same plan" true (plan () = plan ());
  (* and the whole compilation is deterministic *)
  let _, lt2 =
    compile ~allocator:Pimcomp.Memalloc.Lifetime
      ~mode:Pimcomp.Mode.High_throughput "lenet"
  in
  Alcotest.(check bool) "recompilation is bit-identical" true
    (lt.Pimcomp.Compile.program = lt2.Pimcomp.Compile.program)

(* Hand-built trace: two 100B buffers alive at once against a 150B
   scratchpad — exactly one must spill, costing a store+load round trip
   per allocation event. *)
let test_hand_planned_spill () =
  let trace =
    [|
      Pimcomp.Isa.Alloc { core = 0; bytes = 100; request = Pimcomp.Memalloc.Fresh };
      Pimcomp.Isa.Alloc { core = 0; bytes = 100; request = Pimcomp.Memalloc.Fresh };
      Pimcomp.Isa.Free { core = 0; bytes = 100 };
      Pimcomp.Isa.Free { core = 0; bytes = 100 };
    |]
  in
  let plan =
    Pimcomp.Lifetime.plan_of_trace ~core_count:1 ~capacity:(Some 150) trace
  in
  Alcotest.(check int) "one buffer spills" 1
    plan.Pimcomp.Lifetime.spilled_buffers;
  Alcotest.(check int) "round-trip traffic" 200 plan.Pimcomp.Lifetime.spill;
  Alcotest.(check bool) "resident fits" true
    (plan.Pimcomp.Lifetime.resident.(0) <= 150);
  Alcotest.(check int) "demand is the unclamped sum" 200
    plan.Pimcomp.Lifetime.demand.(0);
  (* without the capacity nothing spills and both buffers coexist *)
  let free = Pimcomp.Lifetime.plan_of_trace ~core_count:1 ~capacity:None trace in
  Alcotest.(check int) "no spill unconstrained" 0 free.Pimcomp.Lifetime.spill;
  Alcotest.(check int) "placement packs both" 200
    free.Pimcomp.Lifetime.resident.(0)

let tight_config =
  { Pimhw.Config.default with Pimhw.Config.local_memory_bytes = 4096 }

(* A scratchpad smaller than the largest single request: infeasible for
   the legacy disciplines, a valid spilling program under lifetime. *)
let test_tight_memory_spilling () =
  Alcotest.(check bool) "AG-reuse rejects the tight scratchpad" true
    (match
       compile ~config:tight_config ~allocator:Pimcomp.Memalloc.Ag_reuse
         ~mode:Pimcomp.Mode.High_throughput "squeezenet"
     with
    | _ -> false
    | exception Pimcomp.Memalloc.Doesnt_fit _ -> true);
  let graph, lt =
    compile ~config:tight_config ~allocator:Pimcomp.Memalloc.Lifetime
      ~mode:Pimcomp.Mode.High_throughput "squeezenet"
  in
  let p = lt.Pimcomp.Compile.program in
  Alcotest.(check bool) "spills planned" true
    (p.Pimcomp.Isa.memory.Pimcomp.Isa.spill_bytes > 0);
  Alcotest.(check bool) "resident fits the scratchpad" true
    (Array.for_all (fun r -> r <= 4096) (resident p));
  Alcotest.(check (list string)) "verifies" []
    (List.map
       (Fmt.str "%a" Pimcomp.Verify.pp_violation)
       (Pimcomp.Verify.run ~graph ~config:tight_config p))

let test_spill_budget () =
  let options allocator spill_budget =
    {
      Pimcomp.Compile.default_options with
      mode = Pimcomp.Mode.High_throughput;
      allocator;
      spill_budget;
      strategy = Pimcomp.Compile.Puma_like;
    }
  in
  let graph =
    Nnir.Zoo.build "squeezenet"
      ~input_size:(Nnir.Zoo.min_input_size "squeezenet")
  in
  Alcotest.(check bool) "zero budget rejects the spilling program" true
    (match
       Pimcomp.Compile.compile
         ~options:(options Pimcomp.Memalloc.Lifetime (Some 0))
         tight_config graph
     with
    | _ -> false
    | exception Pimcomp.Memalloc.Doesnt_fit _ -> true);
  match
    Pimcomp.Compile.compile
      ~options:(options Pimcomp.Memalloc.Lifetime None)
      tight_config graph
  with
  | r ->
      Alcotest.(check bool) "unlimited budget compiles" true
        (r.Pimcomp.Compile.program.Pimcomp.Isa.memory.Pimcomp.Isa.spill_bytes
        > 0)
  | exception Pimcomp.Memalloc.Doesnt_fit m ->
      Alcotest.failf "unlimited budget rejected: %s" m

let test_text_roundtrip () =
  (* lifetime programs round-trip through the text format, freeag
     events, resident peaks and all *)
  let check_roundtrip label p =
    let p' = Pimcomp.Isa_text.of_string (Pimcomp.Isa_text.to_string p) in
    if p <> p' then Alcotest.failf "%s: text round-trip changed the program"
        label
  in
  let _, ll =
    compile ~allocator:Pimcomp.Memalloc.Lifetime
      ~mode:Pimcomp.Mode.Low_latency "tiny"
  in
  check_roundtrip "tiny LL lifetime" ll.Pimcomp.Compile.program;
  let _, tight =
    compile ~config:tight_config ~allocator:Pimcomp.Memalloc.Lifetime
      ~mode:Pimcomp.Mode.High_throughput "squeezenet"
  in
  check_roundtrip "tight HT lifetime (spilling)"
    tight.Pimcomp.Compile.program

let test_simulates () =
  let _, lt =
    compile ~config:tight_config ~allocator:Pimcomp.Memalloc.Lifetime
      ~mode:Pimcomp.Mode.High_throughput "squeezenet"
  in
  let m =
    Pimsim.Engine.run
      ~parallelism:Pimsim.Engine.default_parallelism tight_config
      lt.Pimcomp.Compile.program
  in
  Alcotest.(check bool) "no deadlock" false m.Pimsim.Metrics.deadlocked;
  Alcotest.(check bool) "spill traffic hits the global memory model" true
    (m.Pimsim.Metrics.global_load_bytes > 0
    && m.Pimsim.Metrics.global_store_bytes > 0)

let () =
  Alcotest.run "lifetime"
    [
      ( "placement",
        [
          Alcotest.test_case "all strategies verify" `Quick
            test_all_strategies_verify;
          Alcotest.test_case "not worse than AG-reuse" `Quick
            test_not_worse_than_ag_reuse;
          Alcotest.test_case "freeag only under lifetime" `Quick
            test_freeag_only_under_lifetime;
          Alcotest.test_case "plan determinism" `Quick test_plan_determinism;
          Alcotest.test_case "hand-planned spill" `Quick
            test_hand_planned_spill;
        ] );
      ( "spilling",
        [
          Alcotest.test_case "tight memory spills validly" `Quick
            test_tight_memory_spilling;
          Alcotest.test_case "spill budget enforced" `Quick test_spill_budget;
          Alcotest.test_case "text round-trip" `Quick test_text_roundtrip;
          Alcotest.test_case "spilling program simulates" `Quick
            test_simulates;
        ] );
    ]
