(* Tests for the local-memory allocation disciplines (Section IV-D3):
   peak ordering Naive >= ADD-reuse >= AG-reuse, spill accounting,
   accumulator/slot reuse semantics, and the demand/resident peak split
   plus the over-free diagnostic added with the lifetime allocator. *)

let strategies = [ Pimcomp.Memalloc.Naive; Add_reuse; Ag_reuse ]
let all_strategies = strategies @ [ Pimcomp.Memalloc.Lifetime ]

let test_fresh_always_allocates () =
  List.iter
    (fun s ->
      let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
      for _ = 1 to 10 do
        ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:100 Pimcomp.Memalloc.Fresh)
      done;
      Alcotest.(check int)
        (Pimcomp.Memalloc.strategy_name s ^ " fresh peak")
        1000
        (Pimcomp.Memalloc.demand_peak a ~core:0))
    all_strategies

let test_accumulator_reuse () =
  let peak s =
    let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
    for _ = 1 to 10 do
      ignore
        (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:64
           (Pimcomp.Memalloc.Accumulator 7))
    done;
    Pimcomp.Memalloc.demand_peak a ~core:0
  in
  Alcotest.(check int) "naive accumulates" 640 (peak Pimcomp.Memalloc.Naive);
  Alcotest.(check int) "ADD-reuse holds one block" 64
    (peak Pimcomp.Memalloc.Add_reuse);
  Alcotest.(check int) "AG-reuse holds one block" 64
    (peak Pimcomp.Memalloc.Ag_reuse);
  Alcotest.(check int) "lifetime holds one block" 64
    (peak Pimcomp.Memalloc.Lifetime)

let test_ag_slot_reuse () =
  let peak s =
    let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
    for _ = 1 to 10 do
      ignore
        (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:64 (Pimcomp.Memalloc.Ag_slot 3))
    done;
    Pimcomp.Memalloc.demand_peak a ~core:0
  in
  Alcotest.(check int) "naive accumulates" 640 (peak Pimcomp.Memalloc.Naive);
  Alcotest.(check int) "ADD-reuse accumulates slots" 640
    (peak Pimcomp.Memalloc.Add_reuse);
  Alcotest.(check int) "AG-reuse recycles" 64 (peak Pimcomp.Memalloc.Ag_reuse);
  Alcotest.(check int) "lifetime recycles" 64 (peak Pimcomp.Memalloc.Lifetime)

let test_free_only_ag_reuse () =
  let residual s =
    let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
    ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:100 Pimcomp.Memalloc.Fresh);
    Pimcomp.Memalloc.free a ~core:0 ~bytes:100;
    ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:100 Pimcomp.Memalloc.Fresh);
    Pimcomp.Memalloc.demand_peak a ~core:0
  in
  Alcotest.(check int) "naive ignores free" 200
    (residual Pimcomp.Memalloc.Naive);
  Alcotest.(check int) "ADD-reuse ignores free" 200
    (residual Pimcomp.Memalloc.Add_reuse);
  Alcotest.(check int) "AG-reuse reclaims" 100
    (residual Pimcomp.Memalloc.Ag_reuse);
  Alcotest.(check int) "lifetime reclaims" 100
    (residual Pimcomp.Memalloc.Lifetime)

let test_spill_accounting () =
  let a =
    Pimcomp.Memalloc.create Pimcomp.Memalloc.Naive ~core_count:1
      ~capacity:(Some 100)
  in
  let s1 = Pimcomp.Memalloc.alloc a ~core:0 ~bytes:80 Pimcomp.Memalloc.Fresh in
  Alcotest.(check int) "no spill below capacity" 0 s1;
  let s2 = Pimcomp.Memalloc.alloc a ~core:0 ~bytes:50 Pimcomp.Memalloc.Fresh in
  Alcotest.(check int) "spill of overflow" 30 s2;
  Alcotest.(check int) "round-trip traffic" 60 (Pimcomp.Memalloc.spill_bytes a)

let test_spill_free_double_count () =
  (* Regression: freeing a block whose allocation partly spilled must not
     reclaim the spilled portion — those bytes were never resident.  With
     capacity 100: alloc 80 (resident 80), alloc 50 (resident 100, 30
     spilled), free 50 -> only the 20 resident bytes of that block come
     back, so a subsequent alloc 30 still overflows by 10.  The old
     accounting subtracted the full 50 and reported no spill. *)
  let a =
    Pimcomp.Memalloc.create Pimcomp.Memalloc.Ag_reuse ~core_count:1
      ~capacity:(Some 100)
  in
  Alcotest.(check int) "first alloc fits" 0
    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:80 Pimcomp.Memalloc.Fresh);
  Alcotest.(check int) "second alloc spills the overflow" 30
    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:50 Pimcomp.Memalloc.Fresh);
  Pimcomp.Memalloc.free a ~core:0 ~bytes:50;
  Alcotest.(check int) "free reclaimed only the resident portion" 10
    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:30 Pimcomp.Memalloc.Fresh)

let test_per_core_isolation () =
  let a =
    Pimcomp.Memalloc.create Pimcomp.Memalloc.Ag_reuse ~core_count:3
      ~capacity:None
  in
  ignore (Pimcomp.Memalloc.alloc a ~core:1 ~bytes:500 Pimcomp.Memalloc.Fresh);
  Alcotest.(check int) "core 0 untouched" 0
    (Pimcomp.Memalloc.demand_peak a ~core:0);
  Alcotest.(check int) "core 1 peak" 500
    (Pimcomp.Memalloc.demand_peak a ~core:1);
  Alcotest.(check (array int)) "peaks" [| 0; 500; 0 |]
    (Pimcomp.Memalloc.demand_peaks a)

let test_negative_size_rejected () =
  List.iter
    (fun s ->
      let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
      Alcotest.check_raises
        (Pimcomp.Memalloc.strategy_name s ^ " negative alloc")
        (Invalid_argument "Memalloc.alloc: negative size -1") (fun () ->
          ignore
            (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:(-1) Pimcomp.Memalloc.Fresh));
      Alcotest.check_raises
        (Pimcomp.Memalloc.strategy_name s ^ " negative free")
        (Invalid_argument "Memalloc.free: negative size -7") (fun () ->
          Pimcomp.Memalloc.free a ~core:0 ~bytes:(-7)))
    all_strategies

let test_overfree_diagnostic () =
  (* An over-free (freeing more than is live) used to be silently clamped
     to zero; it now surfaces through [overfree_bytes] so Verify can turn
     it into a structured diagnostic instead of masking a double-free. *)
  let a =
    Pimcomp.Memalloc.create Pimcomp.Memalloc.Ag_reuse ~core_count:2
      ~capacity:None
  in
  ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:100 Pimcomp.Memalloc.Fresh);
  Pimcomp.Memalloc.free a ~core:0 ~bytes:100;
  Pimcomp.Memalloc.free a ~core:0 ~bytes:40;
  (* double free *)
  Alcotest.(check int) "underflow counted" 40
    (Pimcomp.Memalloc.overfree_bytes_on a ~core:0);
  Alcotest.(check int) "other core clean" 0
    (Pimcomp.Memalloc.overfree_bytes_on a ~core:1);
  Alcotest.(check int) "total" 40 (Pimcomp.Memalloc.overfree_bytes a);
  Alcotest.(check int) "current clamped at zero" 0
    (Pimcomp.Memalloc.current a ~core:0)

let test_demand_vs_resident () =
  (* Demand is the pre-clamp high-water mark and may exceed the
     scratchpad; resident is post-clamp and never does. *)
  let a =
    Pimcomp.Memalloc.create Pimcomp.Memalloc.Naive ~core_count:1
      ~capacity:(Some 100)
  in
  ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:80 Pimcomp.Memalloc.Fresh);
  ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:50 Pimcomp.Memalloc.Fresh);
  Alcotest.(check int) "demand exceeds capacity" 130
    (Pimcomp.Memalloc.demand_peak a ~core:0);
  Alcotest.(check int) "resident clamps at capacity" 100
    (Pimcomp.Memalloc.resident_peak a ~core:0);
  Alcotest.(check (array int)) "demand array" [| 130 |]
    (Pimcomp.Memalloc.demand_peaks a);
  Alcotest.(check (array int)) "resident array" [| 100 |]
    (Pimcomp.Memalloc.resident_peaks a)

let test_single_request_over_capacity_raises () =
  let a =
    Pimcomp.Memalloc.create Pimcomp.Memalloc.Ag_reuse ~core_count:1
      ~capacity:(Some 64)
  in
  Alcotest.(check bool) "raises Doesnt_fit" true
    (match Pimcomp.Memalloc.alloc a ~core:0 ~bytes:65 Pimcomp.Memalloc.Fresh with
    | exception Pimcomp.Memalloc.Doesnt_fit _ -> true
    | _ -> false)

(* The reuse hierarchy holds for ANY interleaved request trace. *)
let reuse_hierarchy =
  let request_gen =
    QCheck.Gen.(
      map2
        (fun kind key -> (kind, key))
        (int_range 0 2) (int_range 0 5))
  in
  QCheck.Test.make ~name:"peak(AG) <= peak(ADD) <= peak(naive)" ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) request_gen))
    (fun trace ->
      let run s =
        let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
        List.iter
          (fun (kind, key) ->
            let req =
              match kind with
              | 0 -> Pimcomp.Memalloc.Fresh
              | 1 -> Pimcomp.Memalloc.Accumulator key
              | _ -> Pimcomp.Memalloc.Ag_slot key
            in
            ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:32 req))
          trace;
        Pimcomp.Memalloc.demand_peak a ~core:0
      in
      let naive = run Pimcomp.Memalloc.Naive in
      let add = run Pimcomp.Memalloc.Add_reuse in
      let ag = run Pimcomp.Memalloc.Ag_reuse in
      ag <= add && add <= naive)

(* Generator for mixed alloc/free traces used by the accounting
   properties below: (op, key, bytes) with op 0=Fresh alloc,
   1=Accumulator alloc, 2=Ag_slot alloc, 3=free, 4=free_accumulator. *)
let mixed_trace_gen =
  QCheck.Gen.(
    list_size (int_range 1 80)
      (map3
         (fun op key bytes -> (op, key, bytes))
         (int_range 0 4) (int_range 0 4) (int_range 1 96)))

(* Accounting invariant: with no capacity, [current] always equals the
   bytes handed out minus the bytes reclaimed — Σ live − phantom — and
   never goes negative however adversarial the free pattern. *)
let current_accounting =
  QCheck.Test.make ~name:"current = handed out - reclaimed (all strategies)"
    ~count:300 (QCheck.make mixed_trace_gen) (fun trace ->
      List.for_all
        (fun s ->
          let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
          List.iter
            (fun (op, key, bytes) ->
              match op with
              | 0 ->
                  ignore
                    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes
                       Pimcomp.Memalloc.Fresh)
              | 1 ->
                  ignore
                    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes
                       (Pimcomp.Memalloc.Accumulator key))
              | 2 ->
                  ignore
                    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes
                       (Pimcomp.Memalloc.Ag_slot key))
              | 3 -> Pimcomp.Memalloc.free a ~core:0 ~bytes
              | _ -> Pimcomp.Memalloc.free_accumulator a ~core:0 ~key)
            trace;
          let current = Pimcomp.Memalloc.current a ~core:0 in
          current >= 0
          && current <= Pimcomp.Memalloc.demand_peak a ~core:0
          && Pimcomp.Memalloc.resident_peak a ~core:0
             = Pimcomp.Memalloc.demand_peak a ~core:0)
        Pimcomp.Memalloc.[ Naive; Add_reuse; Ag_reuse; Lifetime ])

(* With a capacity, the resident peak may never exceed it, while demand
   is free to — and over-free never pushes current below zero. *)
let resident_below_capacity =
  QCheck.Test.make ~name:"resident peak <= capacity (all strategies)"
    ~count:300 (QCheck.make mixed_trace_gen) (fun trace ->
      let cap = 128 in
      List.for_all
        (fun s ->
          let a =
            Pimcomp.Memalloc.create s ~core_count:1 ~capacity:(Some cap)
          in
          List.iter
            (fun (op, key, bytes) ->
              match op with
              | 0 ->
                  ignore
                    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes
                       Pimcomp.Memalloc.Fresh)
              | 1 ->
                  ignore
                    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes
                       (Pimcomp.Memalloc.Accumulator key))
              | 2 ->
                  ignore
                    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes
                       (Pimcomp.Memalloc.Ag_slot key))
              | 3 -> Pimcomp.Memalloc.free a ~core:0 ~bytes
              | _ -> Pimcomp.Memalloc.free_accumulator a ~core:0 ~key)
            trace;
          Pimcomp.Memalloc.resident_peak a ~core:0 <= cap
          && Pimcomp.Memalloc.current a ~core:0 >= 0)
        Pimcomp.Memalloc.[ Naive; Add_reuse; Ag_reuse; Lifetime ])

let test_strategy_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "name parses back" true
        (Pimcomp.Memalloc.strategy_of_string (Pimcomp.Memalloc.strategy_name s)
        = s))
    all_strategies

let () =
  Alcotest.run "memalloc"
    [
      ( "disciplines",
        [
          Alcotest.test_case "fresh always allocates" `Quick
            test_fresh_always_allocates;
          Alcotest.test_case "accumulator reuse" `Quick test_accumulator_reuse;
          Alcotest.test_case "AG slot reuse" `Quick test_ag_slot_reuse;
          Alcotest.test_case "free semantics" `Quick test_free_only_ag_reuse;
          Alcotest.test_case "spill accounting" `Quick test_spill_accounting;
          Alcotest.test_case "spill/free double count" `Quick
            test_spill_free_double_count;
          Alcotest.test_case "per-core isolation" `Quick
            test_per_core_isolation;
          Alcotest.test_case "negative sizes rejected" `Quick
            test_negative_size_rejected;
          Alcotest.test_case "over-free diagnostic" `Quick
            test_overfree_diagnostic;
          Alcotest.test_case "demand vs resident peaks" `Quick
            test_demand_vs_resident;
          Alcotest.test_case "oversized request raises" `Quick
            test_single_request_over_capacity_raises;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest reuse_hierarchy;
          QCheck_alcotest.to_alcotest current_accounting;
          QCheck_alcotest.to_alcotest resident_below_capacity;
        ] );
    ]
