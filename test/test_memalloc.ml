(* Tests for the local-memory allocation disciplines (Section IV-D3):
   peak ordering Naive >= ADD-reuse >= AG-reuse, spill accounting, and
   accumulator/slot reuse semantics. *)

let strategies = [ Pimcomp.Memalloc.Naive; Add_reuse; Ag_reuse ]

let test_fresh_always_allocates () =
  List.iter
    (fun s ->
      let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
      for _ = 1 to 10 do
        ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:100 Pimcomp.Memalloc.Fresh)
      done;
      Alcotest.(check int)
        (Pimcomp.Memalloc.strategy_name s ^ " fresh peak")
        1000
        (Pimcomp.Memalloc.peak a ~core:0))
    strategies

let test_accumulator_reuse () =
  let peak s =
    let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
    for _ = 1 to 10 do
      ignore
        (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:64
           (Pimcomp.Memalloc.Accumulator 7))
    done;
    Pimcomp.Memalloc.peak a ~core:0
  in
  Alcotest.(check int) "naive accumulates" 640 (peak Pimcomp.Memalloc.Naive);
  Alcotest.(check int) "ADD-reuse holds one block" 64
    (peak Pimcomp.Memalloc.Add_reuse);
  Alcotest.(check int) "AG-reuse holds one block" 64
    (peak Pimcomp.Memalloc.Ag_reuse)

let test_ag_slot_reuse () =
  let peak s =
    let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
    for _ = 1 to 10 do
      ignore
        (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:64 (Pimcomp.Memalloc.Ag_slot 3))
    done;
    Pimcomp.Memalloc.peak a ~core:0
  in
  Alcotest.(check int) "naive accumulates" 640 (peak Pimcomp.Memalloc.Naive);
  Alcotest.(check int) "ADD-reuse accumulates slots" 640
    (peak Pimcomp.Memalloc.Add_reuse);
  Alcotest.(check int) "AG-reuse recycles" 64 (peak Pimcomp.Memalloc.Ag_reuse)

let test_free_only_ag_reuse () =
  let residual s =
    let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
    ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:100 Pimcomp.Memalloc.Fresh);
    Pimcomp.Memalloc.free a ~core:0 ~bytes:100;
    ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:100 Pimcomp.Memalloc.Fresh);
    Pimcomp.Memalloc.peak a ~core:0
  in
  Alcotest.(check int) "naive ignores free" 200
    (residual Pimcomp.Memalloc.Naive);
  Alcotest.(check int) "ADD-reuse ignores free" 200
    (residual Pimcomp.Memalloc.Add_reuse);
  Alcotest.(check int) "AG-reuse reclaims" 100
    (residual Pimcomp.Memalloc.Ag_reuse)

let test_spill_accounting () =
  let a =
    Pimcomp.Memalloc.create Pimcomp.Memalloc.Naive ~core_count:1
      ~capacity:(Some 100)
  in
  let s1 = Pimcomp.Memalloc.alloc a ~core:0 ~bytes:80 Pimcomp.Memalloc.Fresh in
  Alcotest.(check int) "no spill below capacity" 0 s1;
  let s2 = Pimcomp.Memalloc.alloc a ~core:0 ~bytes:50 Pimcomp.Memalloc.Fresh in
  Alcotest.(check int) "spill of overflow" 30 s2;
  Alcotest.(check int) "round-trip traffic" 60 (Pimcomp.Memalloc.spill_bytes a)

let test_spill_free_double_count () =
  (* Regression: freeing a block whose allocation partly spilled must not
     reclaim the spilled portion — those bytes were never resident.  With
     capacity 100: alloc 80 (resident 80), alloc 50 (resident 100, 30
     spilled), free 50 -> only the 20 resident bytes of that block come
     back, so a subsequent alloc 30 still overflows by 10.  The old
     accounting subtracted the full 50 and reported no spill. *)
  let a =
    Pimcomp.Memalloc.create Pimcomp.Memalloc.Ag_reuse ~core_count:1
      ~capacity:(Some 100)
  in
  Alcotest.(check int) "first alloc fits" 0
    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:80 Pimcomp.Memalloc.Fresh);
  Alcotest.(check int) "second alloc spills the overflow" 30
    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:50 Pimcomp.Memalloc.Fresh);
  Pimcomp.Memalloc.free a ~core:0 ~bytes:50;
  Alcotest.(check int) "free reclaimed only the resident portion" 10
    (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:30 Pimcomp.Memalloc.Fresh)

let test_per_core_isolation () =
  let a =
    Pimcomp.Memalloc.create Pimcomp.Memalloc.Ag_reuse ~core_count:3
      ~capacity:None
  in
  ignore (Pimcomp.Memalloc.alloc a ~core:1 ~bytes:500 Pimcomp.Memalloc.Fresh);
  Alcotest.(check int) "core 0 untouched" 0 (Pimcomp.Memalloc.peak a ~core:0);
  Alcotest.(check int) "core 1 peak" 500 (Pimcomp.Memalloc.peak a ~core:1);
  Alcotest.(check (array int)) "peaks" [| 0; 500; 0 |] (Pimcomp.Memalloc.peaks a)

(* The reuse hierarchy holds for ANY interleaved request trace. *)
let reuse_hierarchy =
  let request_gen =
    QCheck.Gen.(
      map2
        (fun kind key -> (kind, key))
        (int_range 0 2) (int_range 0 5))
  in
  QCheck.Test.make ~name:"peak(AG) <= peak(ADD) <= peak(naive)" ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) request_gen))
    (fun trace ->
      let run s =
        let a = Pimcomp.Memalloc.create s ~core_count:1 ~capacity:None in
        List.iter
          (fun (kind, key) ->
            let req =
              match kind with
              | 0 -> Pimcomp.Memalloc.Fresh
              | 1 -> Pimcomp.Memalloc.Accumulator key
              | _ -> Pimcomp.Memalloc.Ag_slot key
            in
            ignore (Pimcomp.Memalloc.alloc a ~core:0 ~bytes:32 req))
          trace;
        Pimcomp.Memalloc.peak a ~core:0
      in
      let naive = run Pimcomp.Memalloc.Naive in
      let add = run Pimcomp.Memalloc.Add_reuse in
      let ag = run Pimcomp.Memalloc.Ag_reuse in
      ag <= add && add <= naive)

let test_strategy_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "name parses back" true
        (Pimcomp.Memalloc.strategy_of_string (Pimcomp.Memalloc.strategy_name s)
        = s))
    strategies

let () =
  Alcotest.run "memalloc"
    [
      ( "disciplines",
        [
          Alcotest.test_case "fresh always allocates" `Quick
            test_fresh_always_allocates;
          Alcotest.test_case "accumulator reuse" `Quick test_accumulator_reuse;
          Alcotest.test_case "AG slot reuse" `Quick test_ag_slot_reuse;
          Alcotest.test_case "free semantics" `Quick test_free_only_ag_reuse;
          Alcotest.test_case "spill accounting" `Quick test_spill_accounting;
          Alcotest.test_case "spill/free double count" `Quick
            test_spill_free_double_count;
          Alcotest.test_case "per-core isolation" `Quick
            test_per_core_isolation;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest reuse_hierarchy ]);
    ]
