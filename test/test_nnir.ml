(* Tests for the DNN IR substrate: shapes, shape inference, graph
   validation, the model zoo (against published parameter counts), the
   textual format round-trip and workload statistics. *)

let check_shape msg expected actual =
  Alcotest.(check (list int)) msg expected (Nnir.Tensor.to_list actual)

(* --- tensor -------------------------------------------------------------- *)

let test_tensor_basics () =
  let s = Nnir.Tensor.chw ~channels:3 ~height:4 ~width:5 in
  Alcotest.(check int) "elements" 60 (Nnir.Tensor.num_elements s);
  Alcotest.(check int) "bytes" 120 (Nnir.Tensor.num_bytes s);
  Alcotest.(check int) "channels" 3 (Nnir.Tensor.channels s);
  Alcotest.(check int) "height" 4 (Nnir.Tensor.height s);
  Alcotest.(check int) "width" 5 (Nnir.Tensor.width s);
  Alcotest.(check int) "vector" 7 (Nnir.Tensor.features (Nnir.Tensor.vector 7));
  Alcotest.(check bool) "equal" true
    (Nnir.Tensor.equal s (Nnir.Tensor.of_list [ 3; 4; 5 ]))

let test_tensor_validate () =
  Alcotest.check_raises "non-positive dim"
    (Invalid_argument "Tensor.validate: dimension 1 of [3x0x5] is non-positive")
    (fun () -> Nnir.Tensor.validate [| 3; 0; 5 |])

(* --- shape inference ------------------------------------------------------ *)

let infer op shapes = Nnir.Shape_infer.infer op shapes

let test_conv_shapes () =
  let input = Nnir.Tensor.chw ~channels:3 ~height:224 ~width:224 in
  check_shape "vgg conv3x3 pad1" [ 64; 224; 224 ]
    (infer (Nnir.Op.conv ~pad:1 ~out_channels:64 ~kernel:3 ()) [ input ]);
  check_shape "7x7 s2 p3" [ 64; 112; 112 ]
    (infer (Nnir.Op.conv ~stride:2 ~pad:3 ~out_channels:64 ~kernel:7 ())
       [ input ]);
  check_shape "1x1" [ 16; 224; 224 ]
    (infer (Nnir.Op.conv ~out_channels:16 ~kernel:1 ()) [ input ]);
  (* rectangular inception-v3 kernel *)
  check_shape "1x7 pad(0,3)" [ 192; 17; 17 ]
    (infer
       (Nnir.Op.conv_rect
          ~pad:{ top = 0; bottom = 0; left = 3; right = 3 }
          ~out_channels:192 ~kernel_h:1 ~kernel_w:7 ())
       [ Nnir.Tensor.chw ~channels:768 ~height:17 ~width:17 ])

let test_pool_shapes () =
  let input = Nnir.Tensor.chw ~channels:64 ~height:56 ~width:56 in
  check_shape "floor pool" [ 64; 27; 27 ]
    (infer (Nnir.Op.pool ~stride:2 ~kind:Nnir.Op.Max_pool ~kernel:3 ())
       [ input ]);
  check_shape "ceil pool" [ 64; 28; 28 ]
    (infer
       (Nnir.Op.pool ~stride:2 ~ceil_mode:true ~kind:Nnir.Op.Max_pool
          ~kernel:3 ())
       [ input ]);
  check_shape "global pool" [ 64; 1; 1 ]
    (infer (Nnir.Op.global_pool ~kind:Nnir.Op.Avg_pool) [ input ])

let test_concat_eltwise () =
  let a = Nnir.Tensor.chw ~channels:64 ~height:28 ~width:28 in
  let b = Nnir.Tensor.chw ~channels:32 ~height:28 ~width:28 in
  check_shape "concat" [ 96; 28; 28 ] (infer Nnir.Op.Concat [ a; b ]);
  check_shape "eltwise" [ 64; 28; 28 ]
    (infer (Nnir.Op.Eltwise Nnir.Op.Add) [ a; a ]);
  Alcotest.check_raises "eltwise mismatch"
    (Nnir.Shape_infer.Shape_error
       "eltwise input 1 has shape [32x28x28], expected [64x28x28]") (fun () ->
      ignore (infer (Nnir.Op.Eltwise Nnir.Op.Add) [ a; b ]));
  (match infer Nnir.Op.Concat [ a; Nnir.Tensor.chw ~channels:1 ~height:9 ~width:9 ] with
  | exception Nnir.Shape_infer.Shape_error _ -> ()
  | _ -> Alcotest.fail "concat spatial mismatch accepted")

let test_fc_flatten () =
  let input = Nnir.Tensor.chw ~channels:512 ~height:7 ~width:7 in
  check_shape "flatten" [ 25088 ] (infer Nnir.Op.Flatten [ input ]);
  check_shape "fc" [ 4096 ]
    (infer (Nnir.Op.fully_connected ~out_features:4096 ()) [ input ])

(* --- graph validation ----------------------------------------------------- *)

let test_graph_cycle () =
  let nodes =
    [
      Nnir.Node.make ~id:0 ~name:"a" ~op:(Nnir.Op.Activation Nnir.Op.Relu)
        ~inputs:[ 1 ];
      Nnir.Node.make ~id:1 ~name:"b" ~op:(Nnir.Op.Activation Nnir.Op.Relu)
        ~inputs:[ 0 ];
    ]
  in
  match Nnir.Graph.create ~name:"cyclic" nodes with
  | exception Nnir.Graph.Invalid_graph _ -> ()
  | _ -> Alcotest.fail "cycle accepted"

let test_graph_bad_ids () =
  let nodes =
    [ Nnir.Node.make ~id:5 ~name:"x" ~op:(Nnir.Op.Input [| 1 |]) ~inputs:[] ]
  in
  match Nnir.Graph.create ~name:"bad" nodes with
  | exception Nnir.Graph.Invalid_graph _ -> ()
  | _ -> Alcotest.fail "bad ids accepted"

let test_graph_arity () =
  let nodes =
    [
      Nnir.Node.make ~id:0 ~name:"in" ~op:(Nnir.Op.Input [| 4 |]) ~inputs:[];
      Nnir.Node.make ~id:1 ~name:"add" ~op:(Nnir.Op.Eltwise Nnir.Op.Add)
        ~inputs:[ 0 ];
    ]
  in
  match Nnir.Graph.create ~name:"bad-arity" nodes with
  | exception Nnir.Graph.Invalid_graph _ -> ()
  | _ -> Alcotest.fail "bad arity accepted"

let test_weighted_ancestors () =
  let g = Nnir.Zoo.tiny () in
  (* the eltwise add merges two convs; its weighted ancestors are both *)
  let add_id =
    Array.to_list (Nnir.Graph.nodes g)
    |> List.find (fun n -> Nnir.Node.op n = Nnir.Op.Eltwise Nnir.Op.Add)
    |> Nnir.Node.id
  in
  Alcotest.(check int) "two conv ancestors" 2
    (List.length (Nnir.Graph.weighted_ancestors g add_id))

(* --- zoo ------------------------------------------------------------------ *)

let total_weights g = (Nnir.Stats.of_graph g).Nnir.Stats.total_weights

let close_to ~tolerance expected actual =
  let e = float_of_int expected and a = float_of_int actual in
  abs_float (e -. a) /. e < tolerance

let check_weights name expected g =
  let actual = total_weights g in
  if not (close_to ~tolerance:0.03 expected actual) then
    Alcotest.failf "%s: expected ~%d weights, got %d" name expected actual

let test_zoo_vgg16 () =
  let g = Nnir.Zoo.vgg16 () in
  (* published: 138.36 M parameters *)
  check_weights "vgg16" 138_360_000 g;
  let conv1 = Nnir.Graph.node g 1 in
  check_shape "conv1" [ 64; 224; 224 ] (Nnir.Node.output_shape conv1)

let test_zoo_resnet18 () =
  (* published: 11.69 M parameters *)
  check_weights "resnet18" 11_690_000 (Nnir.Zoo.resnet18 ());
  let g = Nnir.Zoo.resnet18 () in
  let out = Nnir.Graph.outputs g in
  Alcotest.(check int) "single output" 1 (List.length out);
  check_shape "logits" [ 1000 ]
    (Nnir.Node.output_shape (Nnir.Graph.node g (List.hd out)))

let test_zoo_squeezenet () =
  (* published: 1.25 M parameters *)
  check_weights "squeezenet" 1_248_000 (Nnir.Zoo.squeezenet ())

let test_zoo_googlenet () =
  (* ~7.0 M parameters with the original 5x5 inception branch, no aux
     classifiers *)
  check_weights "googlenet" 7_000_000 (Nnir.Zoo.googlenet ())

let test_zoo_inception_v3 () =
  (* published: 23.8 M parameters (no aux head) *)
  check_weights "inception_v3" 23_800_000 (Nnir.Zoo.inception_v3 ())

let test_zoo_mobilenet () =
  (* published: 4.2 M parameters *)
  check_weights "mobilenet" 4_230_000 (Nnir.Zoo.mobilenet ());
  (* depthwise layers must carry groups = C_in *)
  let g = Nnir.Zoo.mobilenet ~input_size:32 () in
  let depthwise =
    Array.to_list (Nnir.Graph.nodes g)
    |> List.filter (fun n ->
           match Nnir.Node.op n with
           | Nnir.Op.Conv c -> c.groups > 1
           | _ -> false)
  in
  Alcotest.(check int) "13 depthwise convs" 13 (List.length depthwise)

let test_grouped_conv_shapes () =
  let input = Nnir.Tensor.chw ~channels:32 ~height:28 ~width:28 in
  check_shape "depthwise 3x3" [ 32; 28; 28 ]
    (infer (Nnir.Op.conv ~pad:1 ~groups:32 ~out_channels:32 ~kernel:3 ())
       [ input ]);
  (match
     infer (Nnir.Op.conv ~groups:5 ~out_channels:32 ~kernel:1 ()) [ input ]
   with
  | exception Nnir.Shape_infer.Shape_error _ -> ()
  | _ -> Alcotest.fail "indivisible groups accepted")

let test_zoo_extended_models () =
  (* published parameter counts *)
  check_weights "resnet34" 21_800_000 (Nnir.Zoo.resnet34 ());
  check_weights "vgg19" 143_670_000 (Nnir.Zoo.vgg19 ());
  (* densenet121 has 7.98M incl. batch-norm; ~7.9M without *)
  check_weights "densenet121" 7_910_000 (Nnir.Zoo.densenet121 ());
  let g = Nnir.Zoo.densenet121 ~input_size:33 () in
  let concats =
    Array.to_list (Nnir.Graph.nodes g)
    |> List.filter (fun n -> Nnir.Node.op n = Nnir.Op.Concat)
  in
  Alcotest.(check int) "58 dense concatenations" 58 (List.length concats)

let test_simplify_identity () =
  let b = Nnir.Builder.create "s" in
  let x = Nnir.Builder.input b ~channels:3 ~size:8 in
  let x = Nnir.Builder.identity b x in
  let x = Nnir.Builder.conv b x ~out_channels:4 ~kernel:3 ~pad:1 in
  let x = Nnir.Builder.identity b x in
  let x = Nnir.Builder.identity b x in
  let _ = Nnir.Builder.relu b x in
  let g = Nnir.Builder.finish b in
  let r = Nnir.Simplify.run g in
  Alcotest.(check int) "3 identities removed" 3 r.Nnir.Simplify.removed;
  Alcotest.(check int) "3 nodes remain" 3
    (Nnir.Graph.num_nodes r.Nnir.Simplify.graph);
  (* output shape preserved *)
  let out_shape graph =
    Nnir.Node.output_shape
      (Nnir.Graph.node graph (List.hd (Nnir.Graph.outputs graph)))
  in
  Alcotest.(check (list int)) "shape preserved"
    (Nnir.Tensor.to_list (out_shape g))
    (Nnir.Tensor.to_list (out_shape r.Nnir.Simplify.graph))

let test_simplify_flatten_fc () =
  let b = Nnir.Builder.create "s" in
  let x = Nnir.Builder.input b ~channels:4 ~size:4 in
  let x = Nnir.Builder.flatten b x in
  let x = Nnir.Builder.flatten b x in
  let _ = Nnir.Builder.fc b x ~out_features:10 in
  let g = Nnir.Builder.finish b in
  let r = Nnir.Simplify.run g in
  Alcotest.(check int) "both flattens removed" 2 r.Nnir.Simplify.removed;
  (* FC's shape unchanged *)
  let out = List.hd (Nnir.Graph.outputs r.Nnir.Simplify.graph) in
  Alcotest.(check (list int)) "fc output" [ 10 ]
    (Nnir.Tensor.to_list
       (Nnir.Node.output_shape (Nnir.Graph.node r.Nnir.Simplify.graph out)))

let test_simplify_keeps_needed_flatten () =
  (* a flatten feeding softmax (not FC) must survive *)
  let b = Nnir.Builder.create "s" in
  let x = Nnir.Builder.input b ~channels:4 ~size:4 in
  let x = Nnir.Builder.flatten b x in
  let _ = Nnir.Builder.softmax b x in
  let g = Nnir.Builder.finish b in
  let r = Nnir.Simplify.run g in
  Alcotest.(check int) "nothing removed" 0 r.Nnir.Simplify.removed

let simplify_preserves_zoo_shapes =
  QCheck.Test.make ~name:"simplify preserves zoo output shapes" ~count:12
    (QCheck.make
       (QCheck.Gen.oneofl
          [ "tiny"; "lenet"; "mlp"; "squeezenet"; "resnet18"; "mobilenet" ]))
    (fun name ->
      let g = Nnir.Zoo.build ~input_size:(Nnir.Zoo.min_input_size name) name in
      let r = Nnir.Simplify.run g in
      let shape graph =
        List.map
          (fun id -> Nnir.Node.output_shape (Nnir.Graph.node graph id))
          (Nnir.Graph.outputs graph)
      in
      shape g = shape r.Nnir.Simplify.graph)

let test_zoo_min_sizes () =
  List.iter
    (fun name ->
      let size = Nnir.Zoo.min_input_size name in
      let g = Nnir.Zoo.build ~input_size:size name in
      Alcotest.(check bool)
        (name ^ " builds at min size") true
        (Nnir.Graph.num_nodes g > 0))
    Nnir.Zoo.names

let test_zoo_rejects_small () =
  match Nnir.Zoo.build ~input_size:8 "vgg16" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "vgg16 at 8 px accepted"

let test_zoo_scaled_size () =
  Alcotest.(check int) "vgg16/4" 56 (Nnir.Zoo.scaled_input_size "vgg16");
  Alcotest.(check int) "iv3/4" 75 (Nnir.Zoo.scaled_input_size "inception_v3")

(* --- text format ---------------------------------------------------------- *)

let test_roundtrip_zoo () =
  List.iter
    (fun name ->
      let size = Nnir.Zoo.min_input_size name in
      let g = Nnir.Zoo.build ~input_size:size name in
      let text = Nnir.Text_format.to_string g in
      let g' = Nnir.Text_format.of_string text in
      Alcotest.(check string)
        (name ^ " round-trips") text
        (Nnir.Text_format.to_string g');
      Alcotest.(check int)
        (name ^ " node count") (Nnir.Graph.num_nodes g)
        (Nnir.Graph.num_nodes g'))
    Nnir.Zoo.names

let test_parse_errors () =
  (match Nnir.Text_format.of_string "node 0 x conv inputs=" with
  | exception Nnir.Text_format.Parse_error _ -> ()
  | _ -> Alcotest.fail "missing header accepted");
  (match Nnir.Text_format.of_string "graph g\nnode 0 x frobnicate inputs=" with
  | exception Nnir.Text_format.Parse_error { line = 2; _ } -> ()
  | _ -> Alcotest.fail "unknown op accepted");
  match Nnir.Text_format.of_string "graph g\nnode 0 x conv oc=zz inputs=" with
  | exception Nnir.Text_format.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad int accepted"

let test_whitespace_names () =
  (* the format is whitespace-separated, so a name containing whitespace
     would change the token structure: serialisation must refuse it
     rather than emit a line that mis-parses on the way back in *)
  let graph_with_node_name name =
    Nnir.Graph.create ~name:"g"
      [ Nnir.Node.make ~id:0 ~name ~op:(Nnir.Op.Input [| 4 |]) ~inputs:[] ]
  in
  (match Nnir.Text_format.to_string (graph_with_node_name "my node") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "node name with space serialised");
  (match Nnir.Text_format.to_string (graph_with_node_name "") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty node name serialised");
  (match
     Nnir.Text_format.to_string
       (Nnir.Graph.create ~name:"my graph"
          [
            Nnir.Node.make ~id:0 ~name:"in" ~op:(Nnir.Op.Input [| 4 |])
              ~inputs:[];
          ])
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "graph name with space serialised");
  (* the parser side: a stray bare token (what a whitespace name would
     produce) is a clear Parse_error, not a silent mis-parse *)
  (match
     Nnir.Text_format.of_string "graph g\nnode 0 my node input shape=4 inputs="
   with
  | exception Nnir.Text_format.Parse_error { line = 2; _ } -> ()
  | _ -> Alcotest.fail "bare token accepted");
  match Nnir.Text_format.of_string "graph my g" with
  | exception Nnir.Text_format.Parse_error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "multi-token graph header accepted"

(* --- stats ---------------------------------------------------------------- *)

let test_lenet_stats () =
  let g = Nnir.Zoo.lenet () in
  let s = Nnir.Stats.of_graph g in
  Alcotest.(check int) "lenet MACs" 416_520 s.Nnir.Stats.total_macs;
  Alcotest.(check int) "lenet weights" 61_706 s.Nnir.Stats.total_weights

let test_stats_macs_scale () =
  (* MACs scale with the square of the input resolution for conv nets *)
  let m size =
    (Nnir.Stats.of_graph (Nnir.Zoo.vgg16 ~input_size:size ())).Nnir.Stats
      .total_macs
  in
  let m224 = m 224 and m112 = m 112 in
  (* conv part dominates; ratio should be close to 4 *)
  let conv_ratio = float_of_int m224 /. float_of_int m112 in
  if conv_ratio < 3.0 || conv_ratio > 4.5 then
    Alcotest.failf "unexpected MAC scaling %.2f" conv_ratio

(* --- qcheck properties ---------------------------------------------------- *)

let conv_extent_property =
  QCheck.Test.make ~name:"conv output extent within bounds" ~count:500
    QCheck.(
      quad (int_range 1 64) (int_range 1 7) (int_range 1 4) (int_range 0 3))
    (fun (input, kernel, stride, pad) ->
      QCheck.assume (kernel <= input + (2 * pad));
      let out =
        Nnir.Shape_infer.conv_extent ~in_extent:input ~kernel ~stride
          ~pad_lo:pad ~pad_hi:pad
      in
      out >= 1 && out <= input + (2 * pad))

let pool_ceil_ge_floor =
  QCheck.Test.make ~name:"ceil pooling never smaller than floor" ~count:500
    QCheck.(
      quad (int_range 1 64) (int_range 1 7) (int_range 1 4) (int_range 0 3))
    (fun (input, kernel, stride, pad) ->
      QCheck.assume (kernel <= input + (2 * pad));
      let f ceil_mode =
        Nnir.Shape_infer.pool_extent ~ceil_mode ~in_extent:input ~kernel
          ~stride ~pad_lo:pad ~pad_hi:pad
      in
      f true >= f false)

let random_chain_roundtrip =
  (* build a random conv/pool/relu chain and round-trip it through the
     textual format *)
  let gen = QCheck.Gen.(list_size (int_range 1 12) (int_range 0 5)) in
  QCheck.Test.make ~name:"random chain text round-trip" ~count:200
    (QCheck.make gen) (fun choices ->
      let b = Nnir.Builder.create "chain" in
      let x = ref (Nnir.Builder.input b ~channels:3 ~size:64) in
      List.iter
        (fun c ->
          match c with
          | 0 -> x := Nnir.Builder.conv b !x ~out_channels:8 ~kernel:3 ~pad:1
          | 1 -> x := Nnir.Builder.relu b !x
          | 2 -> x := Nnir.Builder.conv b !x ~out_channels:4 ~kernel:1
          | 3 -> x := Nnir.Builder.identity b !x
          | 4 ->
              x :=
                Nnir.Builder.conv_rect b !x ~out_channels:6 ~kernel_h:1
                  ~kernel_w:3
                  ~pad:{ top = 0; bottom = 0; left = 1; right = 1 }
          | _ -> x := Nnir.Builder.softmax b !x)
        choices;
      let g = Nnir.Builder.finish b in
      let text = Nnir.Text_format.to_string g in
      Nnir.Text_format.to_string (Nnir.Text_format.of_string text) = text)

let () =
  Alcotest.run "nnir"
    [
      ( "tensor",
        [
          Alcotest.test_case "basics" `Quick test_tensor_basics;
          Alcotest.test_case "validate" `Quick test_tensor_validate;
        ] );
      ( "shape-infer",
        [
          Alcotest.test_case "conv" `Quick test_conv_shapes;
          Alcotest.test_case "pool" `Quick test_pool_shapes;
          Alcotest.test_case "concat/eltwise" `Quick test_concat_eltwise;
          Alcotest.test_case "fc/flatten" `Quick test_fc_flatten;
        ] );
      ( "graph",
        [
          Alcotest.test_case "cycle rejected" `Quick test_graph_cycle;
          Alcotest.test_case "bad ids rejected" `Quick test_graph_bad_ids;
          Alcotest.test_case "bad arity rejected" `Quick test_graph_arity;
          Alcotest.test_case "weighted ancestors" `Quick
            test_weighted_ancestors;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "vgg16 params" `Quick test_zoo_vgg16;
          Alcotest.test_case "resnet18 params" `Quick test_zoo_resnet18;
          Alcotest.test_case "squeezenet params" `Quick test_zoo_squeezenet;
          Alcotest.test_case "googlenet params" `Quick test_zoo_googlenet;
          Alcotest.test_case "inception_v3 params" `Quick
            test_zoo_inception_v3;
          Alcotest.test_case "mobilenet params" `Quick test_zoo_mobilenet;
          Alcotest.test_case "extended models" `Quick test_zoo_extended_models;
          Alcotest.test_case "grouped conv shapes" `Quick
            test_grouped_conv_shapes;
          Alcotest.test_case "min sizes build" `Quick test_zoo_min_sizes;
          Alcotest.test_case "too-small rejected" `Quick test_zoo_rejects_small;
          Alcotest.test_case "scaled sizes" `Quick test_zoo_scaled_size;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "identity removal" `Quick test_simplify_identity;
          Alcotest.test_case "flatten/fc removal" `Quick
            test_simplify_flatten_fc;
          Alcotest.test_case "needed flatten kept" `Quick
            test_simplify_keeps_needed_flatten;
          QCheck_alcotest.to_alcotest simplify_preserves_zoo_shapes;
        ] );
      ( "text-format",
        [
          Alcotest.test_case "zoo round-trip" `Quick test_roundtrip_zoo;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "whitespace names" `Quick test_whitespace_names;
        ] );
      ( "stats",
        [
          Alcotest.test_case "lenet" `Quick test_lenet_stats;
          Alcotest.test_case "mac scaling" `Quick test_stats_macs_scale;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ conv_extent_property; pool_ceil_ge_floor; random_chain_roundtrip ]
      );
    ]
