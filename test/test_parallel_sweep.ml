(* Tests for the domain-parallel sweep runner: slot-ordered results,
   parallel/sequential determinism, exception propagation, and the
   simulate convenience over real compiled programs. *)

let hw = Pimhw.Config.puma_like

let test_map_ordering () =
  let items = Array.init 100 (fun i -> i) in
  let seq = Pimsim.Parallel_sweep.map ~domains:1 (fun i -> i * i) items in
  List.iter
    (fun domains ->
      let par = Pimsim.Parallel_sweep.map ~domains (fun i -> i * i) items in
      Alcotest.(check (array int))
        (Fmt.str "%d domains, slot order" domains)
        seq par)
    [ 2; 4; 7 ]

let test_map_more_domains_than_items () =
  let r =
    Pimsim.Parallel_sweep.map ~domains:8 (fun i -> i + 1) [| 1; 2; 3 |]
  in
  Alcotest.(check (array int)) "3 items on 8 domains" [| 2; 3; 4 |] r

let test_map_empty_and_default () =
  Alcotest.(check (array int))
    "empty input" [||]
    (Pimsim.Parallel_sweep.map ~domains:4 (fun i -> i) [||]);
  Alcotest.(check bool) "default domain count >= 1" true
    (Pimsim.Parallel_sweep.default_domains () >= 1)

let test_map_list () =
  Alcotest.(check (list string))
    "list variant"
    [ "a!"; "b!"; "c!" ]
    (Pimsim.Parallel_sweep.map_list ~domains:2
       (fun s -> s ^ "!")
       [ "a"; "b"; "c" ])

exception Boom of int

let test_exception_propagation () =
  let items = Array.init 10 (fun i -> i) in
  match
    Pimsim.Parallel_sweep.map ~domains:3
      (fun i -> if i = 5 then raise (Boom i) else i)
      items
  with
  | _ -> Alcotest.fail "worker exception must reach the caller"
  | exception Boom 5 -> ()

let compiled ~mode =
  let g = Nnir.Zoo.tiny () in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      core_count = Some 8;
      mode }
  in
  (Pimcomp.Compile.compile ~options hw g).Pimcomp.Compile.program

let test_simulate_matches_sequential () =
  let ht = compiled ~mode:Pimcomp.Mode.High_throughput in
  let ll = compiled ~mode:Pimcomp.Mode.Low_latency in
  let points = [| (ht, 4); (ht, 20); (ll, 4); (ll, 20) |] in
  let seq = Pimsim.Parallel_sweep.simulate ~domains:1 hw points in
  let par = Pimsim.Parallel_sweep.simulate ~domains:4 hw points in
  Alcotest.(check bool) "parallel sweep bit-identical to sequential" true
    (seq = par);
  (* and both agree with the reference engine, point by point *)
  Array.iteri
    (fun i (program, parallelism) ->
      let m_ref = Pimsim.Engine_ref.run ~parallelism hw program in
      Alcotest.(check bool)
        (Fmt.str "point %d matches Engine_ref" i)
        true
        (seq.(i) = m_ref))
    points

(* --- persistent pool --------------------------------------------------- *)

let test_pool_matches_map () =
  let items = Array.init 50 (fun i -> i) in
  let expected = Array.map (fun i -> (i * 7) mod 13) items in
  let pool = Pimsim.Parallel_sweep.create_pool ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Pimsim.Parallel_sweep.shutdown_pool pool)
    (fun () ->
      (* same pool reused across batches, slot order preserved *)
      for _ = 1 to 3 do
        let r =
          Pimsim.Parallel_sweep.pool_map pool (fun i -> (i * 7) mod 13) items
        in
        Alcotest.(check (array int)) "pool_map slot order" expected r
      done;
      Alcotest.(check (list string))
        "pool_map_list"
        [ "x!"; "y!" ]
        (Pimsim.Parallel_sweep.pool_map_list pool (fun s -> s ^ "!")
           [ "x"; "y" ]);
      Alcotest.(check bool) "pool_domains positive" true
        (Pimsim.Parallel_sweep.pool_domains pool >= 1))

let test_pool_exception () =
  let pool = Pimsim.Parallel_sweep.create_pool ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pimsim.Parallel_sweep.shutdown_pool pool)
    (fun () ->
      (match
         Pimsim.Parallel_sweep.pool_map pool
           (fun i -> if i = 3 then raise (Boom i) else i)
           (Array.init 8 (fun i -> i))
       with
      | _ -> Alcotest.fail "worker exception must reach the caller"
      | exception Boom 3 -> ());
      (* the pool must survive a failed batch *)
      Alcotest.(check (array int))
        "pool usable after exception" [| 0; 1; 2 |]
        (Pimsim.Parallel_sweep.pool_map pool Fun.id [| 0; 1; 2 |]))

let test_pool_shutdown () =
  let pool = Pimsim.Parallel_sweep.create_pool ~domains:2 () in
  Pimsim.Parallel_sweep.shutdown_pool pool;
  Pimsim.Parallel_sweep.shutdown_pool pool;
  (* idempotent *)
  match Pimsim.Parallel_sweep.pool_map pool Fun.id [| 1 |] with
  | _ -> Alcotest.fail "pool_map after shutdown must raise"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "parallel_sweep"
    [
      ( "map",
        [
          Alcotest.test_case "slot ordering" `Quick test_map_ordering;
          Alcotest.test_case "domains > items" `Quick
            test_map_more_domains_than_items;
          Alcotest.test_case "empty and default" `Quick
            test_map_empty_and_default;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "matches sequential and Engine_ref" `Quick
            test_simulate_matches_sequential;
        ] );
      ( "pool",
        [
          Alcotest.test_case "matches map, reusable" `Quick
            test_pool_matches_map;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
        ] );
    ]
