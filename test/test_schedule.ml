(* Tests for the dataflow schedulers (Section IV-D): structural
   well-formedness, MVM window coverage, rendezvous pairing, and the
   mode-defining traffic properties (HT goes through global memory, LL
   stays on chip). *)

let hw = Pimhw.Config.puma_like

let layout_of ?(seed = 1) name size =
  let g = Nnir.Zoo.build ~input_size:size name in
  let table = Pimcomp.Partition.of_graph hw g in
  let core_count = Pimcomp.Partition.fit_core_count table in
  let rng = Pimcomp.Rng.create ~seed in
  let chrom =
    Pimcomp.Chromosome.random_initial rng table ~core_count
      ~max_node_num_in_core:16 ~extra_replica_attempts:4 ()
  in
  (g, table, Pimcomp.Layout.of_chromosome chrom)

let schedule_ht ?(strategy = Pimcomp.Memalloc.Ag_reuse) layout =
  Pimcomp.Schedule_ht.schedule
    ~options:
      { Pimcomp.Schedule_ht.mvms_per_transfer = 2; strategy;
        spill_budget = None }
    layout

let schedule_ll ?(strategy = Pimcomp.Memalloc.Ag_reuse) layout =
  Pimcomp.Schedule_ll.schedule
    ~options:{ Pimcomp.Schedule_ll.default_options with strategy }
    layout

(* Total MVM windows must equal sum over nodes of
   windows * ags_per_replica — independent of replication, since
   replicas split the windows. *)
let expected_mvm_windows table =
  Array.fold_left
    (fun acc (i : Pimcomp.Partition.info) ->
      acc + (i.Pimcomp.Partition.windows * i.Pimcomp.Partition.ags_per_replica))
    0
    (Pimcomp.Partition.entries table)

let check_verifies ?graph label program =
  match Pimcomp.Verify.run ?graph ~config:hw program with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%s: %a" label Pimcomp.Verify.pp_violation v

let test_well_formed name size =
  let g, table, layout = layout_of name size in
  List.iter
    (fun (label, program) ->
      check_verifies ~graph:g (name ^ " " ^ label) program;
      Alcotest.(check int)
        (name ^ " " ^ label ^ " MVM window coverage")
        (expected_mvm_windows table)
        (Pimcomp.Isa.total_mvm_windows program))
    [ ("HT", schedule_ht layout); ("LL", schedule_ll layout) ]

let test_tiny_well_formed () = test_well_formed "tiny" 16
let test_squeezenet_well_formed () = test_well_formed "squeezenet" 56
let test_resnet_well_formed () = test_well_formed "resnet18" 56

let test_ht_uses_global_memory () =
  let _, _, layout = layout_of "tiny" 16 in
  let p = schedule_ht layout in
  Alcotest.(check bool) "HT loads from global" true
    (p.Pimcomp.Isa.memory.Pimcomp.Isa.global_load_bytes > 0);
  Alcotest.(check bool) "HT stores to global" true
    (p.Pimcomp.Isa.memory.Pimcomp.Isa.global_store_bytes > 0)

let test_ll_stays_on_chip () =
  let g, _, layout = layout_of "tiny" 16 in
  let p = schedule_ll layout in
  (* LL only loads the network input and stores the final output *)
  let input_bytes =
    List.fold_left
      (fun acc id ->
        acc + Nnir.Tensor.num_bytes (Nnir.Node.output_shape (Nnir.Graph.node g id)))
      0 (Nnir.Graph.inputs g)
  in
  let loads = p.Pimcomp.Isa.memory.Pimcomp.Isa.global_load_bytes in
  Alcotest.(check bool) "LL loads bounded by replicated input" true
    (loads <= input_bytes * 24);
  let ht = schedule_ht layout in
  Alcotest.(check bool) "LL loads far below HT loads" true
    (loads * 3 < ht.Pimcomp.Isa.memory.Pimcomp.Isa.global_load_bytes)

let test_ll_has_messages_when_split () =
  (* a layout with scattered AGs must produce SEND/RECV rendezvous *)
  let _, _, layout = layout_of ~seed:3 "squeezenet" 56 in
  let p = schedule_ll layout in
  Alcotest.(check bool) "messages exist" true (p.Pimcomp.Isa.num_tags > 0)

let test_mvms_per_transfer_scaling () =
  (* larger transfer batches mean fewer, bigger MVM bursts *)
  let _, _, layout = layout_of "tiny" 16 in
  let p1 =
    Pimcomp.Schedule_ht.schedule
      ~options:
        { Pimcomp.Schedule_ht.mvms_per_transfer = 1;
          strategy = Pimcomp.Memalloc.Ag_reuse; spill_budget = None }
      layout
  in
  let p4 =
    Pimcomp.Schedule_ht.schedule
      ~options:
        { Pimcomp.Schedule_ht.mvms_per_transfer = 4;
          strategy = Pimcomp.Memalloc.Ag_reuse; spill_budget = None }
      layout
  in
  Alcotest.(check bool) "fewer bursts with batching" true
    (Pimcomp.Isa.num_mvms p4 < Pimcomp.Isa.num_mvms p1);
  Alcotest.(check int) "same windows" (Pimcomp.Isa.total_mvm_windows p1)
    (Pimcomp.Isa.total_mvm_windows p4)

let test_allocator_affects_peak_not_structure () =
  let _, _, layout = layout_of "tiny" 16 in
  let peaks strategy =
    let p = schedule_ll ~strategy layout in
    Array.fold_left max 0 p.Pimcomp.Isa.memory.Pimcomp.Isa.local_peak_bytes
  in
  let naive = peaks Pimcomp.Memalloc.Naive in
  let add = peaks Pimcomp.Memalloc.Add_reuse in
  let ag = peaks Pimcomp.Memalloc.Ag_reuse in
  Alcotest.(check bool) "AG <= ADD <= naive" true (ag <= add && add <= naive);
  Alcotest.(check bool) "AG strictly better than naive" true (ag < naive)

let test_mvm_instr_fields () =
  let _, _, layout = layout_of "tiny" 16 in
  let p = schedule_ht layout in
  Array.iteri
    (fun core instrs ->
      Array.iter
        (fun (i : Pimcomp.Isa.instr) ->
          match i.Pimcomp.Isa.op with
          | Pimcomp.Isa.Mvm m ->
              Alcotest.(check bool) "windows positive" true (m.windows > 0);
              Alcotest.(check bool) "xbars positive" true (m.xbars > 0);
              Alcotest.(check int) "ag on right core" core
                p.Pimcomp.Isa.ag_core.(m.ag)
          | _ -> ())
        instrs)
    p.Pimcomp.Isa.cores

let test_pipeline_depth () =
  Alcotest.(check int) "vgg16 depth 16" 16
    (Pimcomp.Sched_common.pipeline_depth (Nnir.Zoo.vgg16 ~input_size:32 ()));
  Alcotest.(check int) "tiny depth 4" 4
    (Pimcomp.Sched_common.pipeline_depth (Nnir.Zoo.tiny ()));
  Alcotest.(check int) "mlp depth 3" 3
    (Pimcomp.Sched_common.pipeline_depth (Nnir.Zoo.mlp ()))

let test_layout_consistency () =
  let _, table, layout = layout_of ~seed:9 "tiny" 16 in
  (* every AG's core in the layout matches its placement *)
  Array.iteri
    (fun node_index (nl : Pimcomp.Layout.node_layout) ->
      let info = Pimcomp.Partition.entry table node_index in
      Alcotest.(check int) "replica count"
        nl.Pimcomp.Layout.replication
        (Array.length nl.Pimcomp.Layout.replicas);
      Array.iter
        (fun (r : Pimcomp.Layout.replica) ->
          Alcotest.(check int) "ags per replica"
            info.Pimcomp.Partition.ags_per_replica
            (Array.length r.Pimcomp.Layout.ag_ids);
          Alcotest.(check int) "head core is first AG's core"
            r.Pimcomp.Layout.ag_cores.(0)
            r.Pimcomp.Layout.head_core;
          Array.iteri
            (fun i ag ->
              Alcotest.(check int) "ag_core table agrees"
                r.Pimcomp.Layout.ag_cores.(i)
                layout.Pimcomp.Layout.ag_core.(ag))
            r.Pimcomp.Layout.ag_ids)
        nl.Pimcomp.Layout.replicas;
      (* HT window shares partition [0, windows) *)
      let covered =
        Array.fold_left
          (fun acc (r : Pimcomp.Layout.replica) ->
            acc + (r.Pimcomp.Layout.window_hi - r.Pimcomp.Layout.window_lo))
          0 nl.Pimcomp.Layout.replicas
      in
      Alcotest.(check int) "windows covered" info.Pimcomp.Partition.windows
        covered)
    layout.Pimcomp.Layout.by_node_index

let test_isa_text_roundtrip () =
  let _, _, layout = layout_of "tiny" 16 in
  List.iter
    (fun program ->
      let text = Pimcomp.Isa_text.to_string program in
      let parsed = Pimcomp.Isa_text.of_string text in
      Alcotest.(check bool) "parse (print p) = p" true (parsed = program);
      Alcotest.(check string) "round-trips" text
        (Pimcomp.Isa_text.to_string parsed);
      check_verifies "parsed program" parsed;
      (* the parsed program simulates identically *)
      let m1 = Pimsim.Engine.run hw program in
      let m2 = Pimsim.Engine.run hw parsed in
      Alcotest.(check (float 1e-9)) "same makespan"
        m1.Pimsim.Metrics.makespan_ns m2.Pimsim.Metrics.makespan_ns)
    [ schedule_ht layout; schedule_ll layout ]

let test_isa_text_errors () =
  (match Pimcomp.Isa_text.of_string "core 0\n  0: MVM ag=1 deps= node=0" with
  | exception Pimcomp.Isa_text.Parse_error _ -> ()
  | _ -> Alcotest.fail "missing header accepted");
  match
    Pimcomp.Isa_text.of_string
      "program x mode=HT allocator=naive cores=1 tags=0 depth=1\n\
       core 0\n\
      \  0: FROB deps= node=0"
  with
  | exception Pimcomp.Isa_text.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown instruction accepted"

let test_grouped_network_schedules () =
  (* mobilenet exercises depthwise partitioning through both schedulers *)
  let g, table, layout = layout_of "mobilenet" 32 in
  List.iter
    (fun (label, program) ->
      check_verifies ~graph:g ("mobilenet " ^ label) program;
      Alcotest.(check int)
        ("mobilenet " ^ label ^ " windows")
        (expected_mvm_windows table)
        (Pimcomp.Isa.total_mvm_windows program);
      let m = Pimsim.Engine.run hw program in
      Alcotest.(check bool) "completes" false m.Pimsim.Metrics.deadlocked)
    [ ("HT", schedule_ht layout); ("LL", schedule_ll layout) ]

let test_check_catches_bad_programs () =
  let _, _, layout = layout_of "tiny" 16 in
  let p = schedule_ht layout in
  (* corrupt: a RECV on a fresh tag nothing ever SENDs *)
  let bad =
    {
      p with
      Pimcomp.Isa.num_tags = p.Pimcomp.Isa.num_tags + 1;
      Pimcomp.Isa.cores =
        Array.mapi
          (fun core instrs ->
            if core = 0 then
              Array.append instrs
                [|
                  {
                    Pimcomp.Isa.op =
                      Pimcomp.Isa.Recv
                        { src = 1; bytes = 8; tag = p.Pimcomp.Isa.num_tags };
                    deps = [];
                    node_id = -1;
                  };
                |]
            else instrs)
          p.Pimcomp.Isa.cores;
    }
  in
  let violations = Pimcomp.Verify.run ~config:hw bad in
  Alcotest.(check bool) "unmatched recv detected" true
    (List.exists
       (fun (v : Pimcomp.Verify.violation) ->
         v.Pimcomp.Verify.kind = Pimcomp.Verify.Unmatched_recv)
       violations)

let () =
  Alcotest.run "schedule"
    [
      ( "well-formed",
        [
          Alcotest.test_case "tiny" `Quick test_tiny_well_formed;
          Alcotest.test_case "squeezenet" `Quick test_squeezenet_well_formed;
          Alcotest.test_case "resnet18" `Quick test_resnet_well_formed;
        ] );
      ( "mode-properties",
        [
          Alcotest.test_case "HT uses global memory" `Quick
            test_ht_uses_global_memory;
          Alcotest.test_case "LL stays on chip" `Quick test_ll_stays_on_chip;
          Alcotest.test_case "LL rendezvous" `Quick
            test_ll_has_messages_when_split;
          Alcotest.test_case "transfer batching" `Quick
            test_mvms_per_transfer_scaling;
          Alcotest.test_case "allocator peaks" `Quick
            test_allocator_affects_peak_not_structure;
        ] );
      ( "structure",
        [
          Alcotest.test_case "MVM fields" `Quick test_mvm_instr_fields;
          Alcotest.test_case "pipeline depth" `Quick test_pipeline_depth;
          Alcotest.test_case "layout consistency" `Quick
            test_layout_consistency;
          Alcotest.test_case "ISA text round-trip" `Quick
            test_isa_text_roundtrip;
          Alcotest.test_case "ISA text errors" `Quick test_isa_text_errors;
          Alcotest.test_case "grouped network schedules" `Quick
            test_grouped_network_schedules;
          Alcotest.test_case "checker catches corruption" `Quick
            test_check_catches_bad_programs;
        ] );
    ]
