(* Tests for the discrete-event engine: hand-built micro-programs with
   exactly predictable timings, structural-conflict serialisation,
   rendezvous latency, deadlock detection, determinism and energy
   accounting. *)

let hw = Pimhw.Config.puma_like

let mk_program ?(core_count = 2) ?(num_ags = 2) cores =
  {
    Pimcomp.Isa.graph_name = "micro";
    mode = Pimcomp.Mode.High_throughput;
    allocator = Pimcomp.Memalloc.Ag_reuse;
    core_count;
    cores;
    ag_core = Array.init num_ags (fun i -> i mod core_count);
    ag_xbars = Array.make num_ags 1;
    num_tags = 64;
    pipeline_depth = 1;
    memory =
      {
        Pimcomp.Isa.local_peak_bytes = Array.make core_count 0;
        local_resident_peak_bytes = Array.make core_count 0;
        spill_bytes = 0;
        global_load_bytes = 0;
        global_store_bytes = 0;
      };
    mem_trace = [||];
  }

let instr ?(deps = []) op = { Pimcomp.Isa.op; deps; node_id = 0 }

let run ?(parallelism = 20) p = Pimsim.Engine.run ~parallelism hw p

let test_single_mvm_latency () =
  let p =
    mk_program ~core_count:1 ~num_ags:1
      [| [| instr (Pimcomp.Isa.Mvm
                     { ag = 0; windows = 1; xbars = 1; input_bytes = 0;
                       output_bytes = 0 }) |] |]
  in
  let m = run p in
  Alcotest.(check (float 1e-6)) "one MVM takes T_MVM" 100.0
    m.Pimsim.Metrics.makespan_ns;
  Alcotest.(check bool) "not deadlocked" false m.Pimsim.Metrics.deadlocked

let test_structural_conflict () =
  (* two independent MVMs on the SAME AG serialise; on different AGs
     they overlap *)
  let mvm ag =
    instr (Pimcomp.Isa.Mvm
             { ag; windows = 1; xbars = 1; input_bytes = 0; output_bytes = 0 })
  in
  let same = mk_program ~core_count:1 ~num_ags:1 [| [| mvm 0; mvm 0 |] |] in
  let diff = mk_program ~core_count:1 ~num_ags:2 [| [| mvm 0; mvm 1 |] |] in
  let t_same = (run same).Pimsim.Metrics.makespan_ns in
  let t_diff = (run ~parallelism:20 diff).Pimsim.Metrics.makespan_ns in
  Alcotest.(check (float 1e-6)) "same AG serialises" 200.0 t_same;
  (* different AGs: second issues T_interval = 5 ns later *)
  Alcotest.(check (float 1e-6)) "different AGs overlap" 105.0 t_diff

let test_issue_bandwidth () =
  (* at parallelism 1 the issue interval is T_MVM, so even different AGs
     serialise *)
  let mvm ag =
    instr (Pimcomp.Isa.Mvm
             { ag; windows = 1; xbars = 1; input_bytes = 0; output_bytes = 0 })
  in
  let p = mk_program ~core_count:1 ~num_ags:2 [| [| mvm 0; mvm 1 |] |] in
  let m = run ~parallelism:1 p in
  Alcotest.(check (float 1e-6)) "P=1 serialises issues" 200.0
    m.Pimsim.Metrics.makespan_ns

let test_dependency_ordering () =
  (* dependent VECs on one core execute back to back *)
  let v = instr (Pimcomp.Isa.Vec { kind = Pimcomp.Isa.Vadd; elements = 48 }) in
  let v2 =
    instr ~deps:[ 0 ]
      (Pimcomp.Isa.Vec { kind = Pimcomp.Isa.Vadd; elements = 48 })
  in
  let p = mk_program ~core_count:1 ~num_ags:1 [| [| v; v2 |] |] in
  let m = run p in
  Alcotest.(check (float 1e-6)) "two chained vecs" 2.0
    m.Pimsim.Metrics.makespan_ns

let test_rendezvous_latency () =
  let send =
    instr (Pimcomp.Isa.Send { dst = 1; bytes = 64; tag = 1 })
  in
  let recv =
    instr (Pimcomp.Isa.Recv { src = 0; bytes = 64; tag = 1 })
  in
  let p = mk_program [| [| send |]; [| recv |] |] in
  let m = run p in
  (* mesh of 2 cores: 1 hop = 1.5 ns + 8 flits * 1 ns = 9.5 ns *)
  Alcotest.(check (float 1e-6)) "message latency" 9.5
    m.Pimsim.Metrics.makespan_ns;
  Alcotest.(check int) "one message" 1 m.Pimsim.Metrics.messages

let test_recv_waits_for_send_deps () =
  (* the send is gated by a slow MVM; the recv must observe that *)
  let mvm =
    instr (Pimcomp.Isa.Mvm
             { ag = 0; windows = 3; xbars = 1; input_bytes = 0;
               output_bytes = 0 })
  in
  let send =
    instr ~deps:[ 0 ] (Pimcomp.Isa.Send { dst = 1; bytes = 8; tag = 1 })
  in
  let recv = instr (Pimcomp.Isa.Recv { src = 0; bytes = 8; tag = 1 }) in
  let p = mk_program [| [| mvm; send |]; [| recv |] |] in
  let m = run p in
  Alcotest.(check bool) "recv after mvm + flight" true
    (m.Pimsim.Metrics.makespan_ns >= 300.0)

let test_deadlock_detection () =
  (* a recv whose send never exists *)
  let recv = instr (Pimcomp.Isa.Recv { src = 0; bytes = 8; tag = 42 }) in
  let p = mk_program [| [||]; [| recv |] |] in
  let m = run p in
  Alcotest.(check bool) "deadlock reported" true m.Pimsim.Metrics.deadlocked;
  Alcotest.(check int) "nothing executed on core 1" 0
    m.Pimsim.Metrics.instrs_executed

let test_global_memory_bandwidth () =
  (* streaming dominates for large transfers: 51200 B at 51.2 GB/s =
     1000 ns plus the 30 ns access latency *)
  let p =
    mk_program ~core_count:1
      [| [| instr (Pimcomp.Isa.Load { bytes = 51200 }) |] |]
  in
  let m = run p in
  Alcotest.(check (float 1e-3)) "bandwidth-limited load" 1030.0
    m.Pimsim.Metrics.makespan_ns;
  Alcotest.(check int) "bytes counted" 51200 m.Pimsim.Metrics.global_load_bytes

let test_bank_conflicts () =
  (* two cores on the same bank serialise; on different banks they
     overlap.  Cores c and c+8 share a bank (8 banks). *)
  let load = instr (Pimcomp.Isa.Load { bytes = 51200 }) in
  let same_bank = Array.make 9 [||] in
  same_bank.(0) <- [| load |];
  same_bank.(8) <- [| load |];
  let p_same = mk_program ~core_count:9 same_bank in
  let diff_bank = Array.make 9 [||] in
  diff_bank.(0) <- [| load |];
  diff_bank.(1) <- [| load |];
  let p_diff = mk_program ~core_count:9 diff_bank in
  let t_same = (run p_same).Pimsim.Metrics.makespan_ns in
  let t_diff = (run p_diff).Pimsim.Metrics.makespan_ns in
  Alcotest.(check (float 1e-3)) "same bank serialises" 2030.0 t_same;
  Alcotest.(check (float 1e-3)) "different banks overlap" 1030.0 t_diff

let test_energy_accounting () =
  let mvm =
    instr (Pimcomp.Isa.Mvm
             { ag = 0; windows = 2; xbars = 3; input_bytes = 10;
               output_bytes = 10 })
  in
  let p = mk_program ~core_count:1 ~num_ags:1 [| [| mvm |] |] in
  let m = run p in
  let em = Pimhw.Energy_model.create hw in
  Alcotest.(check (float 1e-6)) "MVM dynamic energy"
    (2.0 *. 3.0 *. em.Pimhw.Energy_model.mvm_energy_pj)
    m.Pimsim.Metrics.energy.Pimsim.Metrics.mvm_pj;
  Alcotest.(check bool) "static energy positive" true
    (Pimsim.Metrics.static_pj m.Pimsim.Metrics.energy > 0.0)

let test_determinism () =
  let g = Nnir.Zoo.tiny () in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Genetic_algorithm Pimcomp.Genetic.fast_params;
      core_count = Some 8 }
  in
  let r = Pimcomp.Compile.compile ~options hw g in
  let m1 = run r.Pimcomp.Compile.program in
  let m2 = run r.Pimcomp.Compile.program in
  Alcotest.(check (float 1e-9)) "identical makespans"
    m1.Pimsim.Metrics.makespan_ns m2.Pimsim.Metrics.makespan_ns;
  Alcotest.(check (float 1e-9)) "identical energy"
    (Pimsim.Metrics.total_pj m1.Pimsim.Metrics.energy)
    (Pimsim.Metrics.total_pj m2.Pimsim.Metrics.energy)

(* Any well-formed random schedule terminates without deadlock and
   respects the dependency ordering in its finish times. *)
let random_programs_terminate =
  QCheck.Test.make ~name:"random compiled programs terminate" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Nnir.Zoo.tiny () in
      let table = Pimcomp.Partition.of_graph hw g in
      let rng = Pimcomp.Rng.create ~seed in
      let chrom =
        Pimcomp.Chromosome.random_initial rng table ~core_count:6
          ~max_node_num_in_core:8 ~extra_replica_attempts:3 ()
      in
      let layout = Pimcomp.Layout.of_chromosome chrom in
      let ht = Pimcomp.Schedule_ht.schedule layout in
      let ll = Pimcomp.Schedule_ll.schedule layout in
      let m1 = run ht and m2 = run ll in
      (not m1.Pimsim.Metrics.deadlocked) && not m2.Pimsim.Metrics.deadlocked)

(* --- failure injection: corrupted programs must be caught by the
   checker or surface as a deadlock, never a crash or a hang ---------- *)

let compiled_ll_program () =
  let g = Nnir.Zoo.tiny () in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      core_count = Some 8;
      mode = Pimcomp.Mode.Low_latency }
  in
  (Pimcomp.Compile.compile ~options hw g).Pimcomp.Compile.program

let drop_instr (p : Pimcomp.Isa.t) ~core ~index =
  (* replace an instruction with a 0-element VEC, stranding whatever
     rendezvous or dependency it carried *)
  {
    p with
    Pimcomp.Isa.cores =
      Array.mapi
        (fun c instrs ->
          if c <> core then instrs
          else
            Array.mapi
              (fun i (instr : Pimcomp.Isa.instr) ->
                if i <> index then instr
                else
                  {
                    instr with
                    Pimcomp.Isa.op =
                      Pimcomp.Isa.Vec { kind = Pimcomp.Isa.Vmove; elements = 0 };
                  })
              instrs)
        p.Pimcomp.Isa.cores;
  }

let injection_never_crashes =
  QCheck.Test.make ~name:"corruption is caught or deadlocks, never crashes"
    ~count:40
    QCheck.(pair (int_range 0 7) (int_range 0 10_000))
    (fun (core, raw_index) ->
      let p = compiled_ll_program () in
      let n = Array.length p.Pimcomp.Isa.cores.(core) in
      QCheck.assume (n > 0);
      let index = raw_index mod n in
      let corrupted = drop_instr p ~core ~index in
      match Pimcomp.Verify.run ~config:hw corrupted with
      | _ :: _ -> true (* verifier caught it *)
      | [] ->
          (* still structurally valid (the dropped op carried no
             rendezvous): the run must complete or flag a deadlock *)
          let m = run corrupted in
          m.Pimsim.Metrics.instrs_executed <= m.Pimsim.Metrics.instrs_total)

let test_dropped_send_deadlocks () =
  let p = compiled_ll_program () in
  (* find a SEND and neutralise it *)
  let found = ref None in
  Array.iteri
    (fun core instrs ->
      Array.iteri
        (fun idx (i : Pimcomp.Isa.instr) ->
          match (i.Pimcomp.Isa.op, !found) with
          | Pimcomp.Isa.Send _, None -> found := Some (core, idx)
          | _ -> ())
        instrs)
    p.Pimcomp.Isa.cores;
  match !found with
  | None -> () (* no messages in this mapping; nothing to test *)
  | Some (core, index) ->
      let corrupted = drop_instr p ~core ~index in
      Alcotest.(check bool) "verifier flags unmatched recv" true
        (List.exists
           (fun (v : Pimcomp.Verify.violation) ->
             v.Pimcomp.Verify.kind = Pimcomp.Verify.Unmatched_recv)
           (Pimcomp.Verify.run ~config:hw corrupted));
      let m = run corrupted in
      Alcotest.(check bool) "simulator deadlocks instead of hanging" true
        m.Pimsim.Metrics.deadlocked

let test_batch_replication () =
  let g = Nnir.Zoo.tiny () in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      core_count = Some 8 }
  in
  let r = Pimcomp.Compile.compile ~options hw g in
  let program = r.Pimcomp.Compile.program in
  let doubled = Pimsim.Batch.replicate program ~batches:3 in
  Alcotest.(check int) "replicated program verifies" 0
    (List.length (Pimcomp.Verify.run ~config:hw doubled));
  Alcotest.(check int) "3x instructions"
    (3 * Pimcomp.Isa.num_instrs program)
    (Pimcomp.Isa.num_instrs doubled)

let test_batch_steady_state () =
  (* the marginal cost of an extra HT inference must be between the
     theoretical steady-state interval and the full single-inference
     makespan, and batching must beat running inferences back-to-back
     serially *)
  let g = Nnir.Zoo.tiny () in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      core_count = Some 8 }
  in
  let r = Pimcomp.Compile.compile ~options hw g in
  let b = Pimsim.Batch.run ~parallelism:20 hw r.Pimcomp.Compile.program ~batches:4 in
  Alcotest.(check bool) "batched run completes" false
    b.Pimsim.Batch.metrics.Pimsim.Metrics.deadlocked;
  Alcotest.(check bool) "steady interval <= single makespan" true
    (b.Pimsim.Batch.steady_interval_ns
    <= b.Pimsim.Batch.single_ns +. 1e-6);
  Alcotest.(check bool) "total < serial execution" true
    (b.Pimsim.Batch.total_ns < 4.0 *. b.Pimsim.Batch.single_ns);
  Alcotest.(check bool) "steady interval positive" true
    (b.Pimsim.Batch.steady_interval_ns > 0.0)

let test_duplicate_send_rejected () =
  (* two SENDs on the same rendezvous tag: the dense tag table must
     refuse the second injection instead of silently overwriting the
     first message's arrival time *)
  let send = instr (Pimcomp.Isa.Send { dst = 1; bytes = 8; tag = 1 }) in
  let recv = instr (Pimcomp.Isa.Recv { src = 0; bytes = 8; tag = 1 }) in
  let p = mk_program [| [| send; send |]; [| recv |] |] in
  match run p with
  | _ -> Alcotest.fail "duplicate SEND on one tag must be rejected"
  | exception Invalid_argument _ -> ()

(* --- differential: flat-arena Engine vs the reference interpreter ----- *)

let compile_zoo ~mode name =
  let g = Nnir.Zoo.build ~input_size:(Nnir.Zoo.min_input_size name) name in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      mode }
  in
  (Pimcomp.Compile.compile ~options hw g).Pimcomp.Compile.program

(* Every zoo network compiled PUMA-like at its minimum input size, in
   both modes — shared between the batch and differential suites. *)
let zoo_programs =
  lazy
    (List.concat_map
       (fun name ->
         List.map
           (fun mode -> (name, mode, compile_zoo ~mode name))
           Pimcomp.Mode.all)
       Nnir.Zoo.names)

let collect_events run_fn =
  let events = ref [] in
  let on_schedule ~core ~index ~start ~finish =
    events := (core, index, start, finish) :: !events
  in
  let m = run_fn ~on_schedule in
  (* the engines may schedule same-instant events in different internal
     orders; the set of (core, index, start, finish) windows is the
     observable contract, so compare order-insensitively *)
  (m, List.sort compare !events)

let engines_agree ?(parallelisms = [ 1; 7; 20 ]) program =
  List.for_all
    (fun parallelism ->
      let m_new, ev_new =
        collect_events (fun ~on_schedule ->
            Pimsim.Engine.run ~parallelism ~on_schedule hw program)
      in
      let m_ref, ev_ref =
        collect_events (fun ~on_schedule ->
            Pimsim.Engine_ref.run ~parallelism ~on_schedule hw program)
      in
      m_new = m_ref && ev_new = ev_ref)
    parallelisms

let test_differential_zoo () =
  List.iter
    (fun (name, mode, program) ->
      Alcotest.(check bool)
        (Fmt.str "%s %s: engines bit-identical" name
           (Pimcomp.Mode.to_string mode))
        true (engines_agree program))
    (Lazy.force zoo_programs)

let random_programs_differential =
  QCheck.Test.make
    ~name:"random programs: engines bit-identical (metrics + events)"
    ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Nnir.Zoo.tiny () in
      let table = Pimcomp.Partition.of_graph hw g in
      let rng = Pimcomp.Rng.create ~seed in
      let chrom =
        Pimcomp.Chromosome.random_initial rng table ~core_count:6
          ~max_node_num_in_core:8 ~extra_replica_attempts:3 ()
      in
      let layout = Pimcomp.Layout.of_chromosome chrom in
      List.for_all engines_agree
        [
          Pimcomp.Schedule_ht.schedule layout;
          Pimcomp.Schedule_ll.schedule layout;
        ])

let test_batch_zoo_coverage () =
  List.iter
    (fun (name, mode, program) ->
      let label = Fmt.str "%s %s" name (Pimcomp.Mode.to_string mode) in
      let b = Pimsim.Batch.replicate program ~batches:2 in
      Alcotest.(check int)
        (label ^ ": replicated program verifies")
        0
        (List.length (Pimcomp.Verify.run ~config:hw b));
      let m_new = Pimsim.Engine.run ~parallelism:20 hw b in
      let m_ref = Pimsim.Engine_ref.run ~parallelism:20 hw b in
      Alcotest.(check bool)
        (label ^ ": batched metrics identical across engines")
        true (m_new = m_ref))
    (Lazy.force zoo_programs)

let test_trace_complete_and_ordered () =
  let g = Nnir.Zoo.tiny () in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Genetic_algorithm Pimcomp.Genetic.fast_params;
      core_count = Some 8;
      mode = Pimcomp.Mode.Low_latency }
  in
  let r = Pimcomp.Compile.compile ~options hw g in
  let program = r.Pimcomp.Compile.program in
  let metrics, trace = Pimsim.Trace.run ~parallelism:20 hw program in
  Alcotest.(check int) "one event per instruction"
    (Pimcomp.Isa.num_instrs program)
    (Pimsim.Trace.length trace);
  (* sorted by start, finish >= start, bounded by makespan *)
  let prev = ref neg_infinity in
  Array.iter
    (fun (e : Pimsim.Trace.event) ->
      Alcotest.(check bool) "sorted" true (e.start_ns >= !prev);
      prev := e.start_ns;
      Alcotest.(check bool) "window sane" true
        (e.finish_ns >= e.start_ns
        && e.finish_ns <= metrics.Pimsim.Metrics.makespan_ns +. 1e-6))
    (Pimsim.Trace.events trace);
  (* trace timing agrees with the plain run *)
  let m2 = run ~parallelism:20 program in
  Alcotest.(check (float 1e-9)) "same makespan" m2.Pimsim.Metrics.makespan_ns
    metrics.Pimsim.Metrics.makespan_ns

let test_trace_respects_deps () =
  let g = Nnir.Zoo.tiny () in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      core_count = Some 8 }
  in
  let r = Pimcomp.Compile.compile ~options hw g in
  let program = r.Pimcomp.Compile.program in
  let _, trace = Pimsim.Trace.run ~parallelism:20 hw program in
  let finish = Array.map (fun c -> Array.make (Array.length c) 0.0)
      program.Pimcomp.Isa.cores
  in
  let start = Array.map (fun c -> Array.make (Array.length c) 0.0)
      program.Pimcomp.Isa.cores
  in
  Array.iter
    (fun (e : Pimsim.Trace.event) ->
      finish.(e.core).(e.index) <- e.finish_ns;
      start.(e.core).(e.index) <- e.start_ns)
    (Pimsim.Trace.events trace);
  Array.iteri
    (fun core instrs ->
      Array.iteri
        (fun idx (i : Pimcomp.Isa.instr) ->
          List.iter
            (fun d ->
              Alcotest.(check bool) "dep finished before start" true
                (finish.(core).(d) <= start.(core).(idx) +. 1e-6))
            i.Pimcomp.Isa.deps)
        instrs)
    program.Pimcomp.Isa.cores

let test_trace_profile_and_csv () =
  let g = Nnir.Zoo.lenet ~input_size:12 () in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      core_count = Some 6 }
  in
  let r = Pimcomp.Compile.compile ~options hw g in
  let _, trace = Pimsim.Trace.run hw r.Pimcomp.Compile.program in
  let profile = Pimsim.Trace.profile trace in
  Alcotest.(check int) "one profile row per core" 6 (List.length profile);
  Alcotest.(check bool) "some MVM time recorded" true
    (List.exists (fun p -> p.Pimsim.Trace.mvm_ns > 0.0) profile);
  let csv = Pimsim.Trace.to_csv trace in
  Alcotest.(check int) "csv row per event + header"
    (Pimsim.Trace.length trace + 2)
    (List.length (String.split_on_char '\n' csv));
  let svg = Pimsim.Trace.to_svg trace in
  Alcotest.(check bool) "svg has a rect per event" true
    (List.length
       (String.split_on_char '\n' svg
       |> List.filter (fun l -> String.length l > 5 && String.sub l 0 5 = "<rect"))
    = Pimsim.Trace.length trace)

let () =
  Alcotest.run "sim"
    [
      ( "micro",
        [
          Alcotest.test_case "single MVM" `Quick test_single_mvm_latency;
          Alcotest.test_case "structural conflict" `Quick
            test_structural_conflict;
          Alcotest.test_case "issue bandwidth" `Quick test_issue_bandwidth;
          Alcotest.test_case "dependency ordering" `Quick
            test_dependency_ordering;
          Alcotest.test_case "rendezvous latency" `Quick
            test_rendezvous_latency;
          Alcotest.test_case "recv waits" `Quick test_recv_waits_for_send_deps;
          Alcotest.test_case "deadlock detection" `Quick
            test_deadlock_detection;
          Alcotest.test_case "gmem bandwidth" `Quick
            test_global_memory_bandwidth;
          Alcotest.test_case "bank conflicts" `Quick test_bank_conflicts;
          Alcotest.test_case "energy accounting" `Quick test_energy_accounting;
          Alcotest.test_case "duplicate send rejected" `Quick
            test_duplicate_send_rejected;
        ] );
      ( "whole-program",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          QCheck_alcotest.to_alcotest random_programs_terminate;
        ] );
      ( "failure-injection",
        [
          QCheck_alcotest.to_alcotest injection_never_crashes;
          Alcotest.test_case "dropped send deadlocks" `Quick
            test_dropped_send_deadlocks;
        ] );
      ( "batch",
        [
          Alcotest.test_case "replication well-formed" `Quick
            test_batch_replication;
          Alcotest.test_case "steady state" `Quick test_batch_steady_state;
          Alcotest.test_case "zoo coverage" `Quick test_batch_zoo_coverage;
        ] );
      ( "differential",
        [
          Alcotest.test_case "zoo networks" `Quick test_differential_zoo;
          QCheck_alcotest.to_alcotest random_programs_differential;
        ] );
      ( "trace",
        [
          Alcotest.test_case "complete and ordered" `Quick
            test_trace_complete_and_ordered;
          Alcotest.test_case "respects deps" `Quick test_trace_respects_deps;
          Alcotest.test_case "profile and csv" `Quick
            test_trace_profile_and_csv;
        ] );
    ]
