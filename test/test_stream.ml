(* Tests for the streaming batched engine: differential bit-identity
   against materialised replication across the zoo (both modes, several
   batch counts, unbounded and over-wide windows), exactness of the
   period detector's fast-forward closure on dyadic-timing
   configurations and on a real network, window-slack invariance
   (qcheck), constant-memory bounds, overflow guards, and the replicate
   memory-strip contract. *)

let hw = Pimhw.Config.puma_like

(* puma_like with the one non-dyadic timing parameter (51.2 GB/s)
   replaced by a power of two: every event time is then a dyadic float,
   all the arithmetic is exact, and the detector's closure is provably
   bit-identical to simulating the tail (DESIGN.md §3.9). *)
let hw_dyadic = { hw with Pimhw.Config.global_memory_gbps = 64.0 }

let compile_zoo ~mode name =
  let g = Nnir.Zoo.build ~input_size:(Nnir.Zoo.min_input_size name) name in
  let options =
    { Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      mode }
  in
  (Pimcomp.Compile.compile ~options hw g).Pimcomp.Compile.program

let zoo_programs =
  lazy
    (List.concat_map
       (fun name ->
         List.map
           (fun mode -> (name, mode, compile_zoo ~mode name))
           Pimcomp.Mode.all)
       Nnir.Zoo.names)

(* strip instance provenance for comparisons where the two sides
   legitimately differ only in how many instances each actually
   simulated (detector fired vs ran to the end) *)
let strip (m : Pimsim.Metrics.t) =
  { m with Pimsim.Metrics.simulated_instances = 0; extrapolated_instances = 0 }

(* additionally zero the five event-order-summed dynamic energies: the
   detector's closure accumulates them in a different association order
   (simulated prefix + skip x steady quantum), so they match only to
   ~1e-12 relative, never bitwise *)
let strip_dyn (m : Pimsim.Metrics.t) =
  let m = strip m in
  {
    m with
    Pimsim.Metrics.energy =
      {
        m.Pimsim.Metrics.energy with
        Pimsim.Metrics.mvm_pj = 0.0;
        vec_pj = 0.0;
        local_mem_pj = 0.0;
        global_mem_pj = 0.0;
        noc_pj = 0.0;
      };
  }

let close rel a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  Float.abs (a -. b) <= rel *. Float.max scale 1.0

let dyn_close rel (a : Pimsim.Metrics.t) (b : Pimsim.Metrics.t) =
  let ea = a.Pimsim.Metrics.energy and eb = b.Pimsim.Metrics.energy in
  close rel ea.Pimsim.Metrics.mvm_pj eb.Pimsim.Metrics.mvm_pj
  && close rel ea.Pimsim.Metrics.vec_pj eb.Pimsim.Metrics.vec_pj
  && close rel ea.Pimsim.Metrics.local_mem_pj eb.Pimsim.Metrics.local_mem_pj
  && close rel ea.Pimsim.Metrics.global_mem_pj eb.Pimsim.Metrics.global_mem_pj
  && close rel ea.Pimsim.Metrics.noc_pj eb.Pimsim.Metrics.noc_pj

(* --- streaming vs materialised, detector off: bit-identity ------------ *)

let test_zoo_differential () =
  List.iter
    (fun (name, mode, program) ->
      List.iter
        (fun batches ->
          let oracle = Pimsim.Batch.run ~parallelism:20 hw program ~batches in
          (* window 0 = unbounded, window >= batches = a bound that never
             binds: both must reproduce the materialised schedule
             bit-for-bit *)
          List.iter
            (fun window ->
              let streamed, stats =
                Pimsim.Batch.run_stream ~parallelism:20 ~window ~detect:false
                  hw program ~batches
              in
              let label =
                Fmt.str "%s %s N=%d w=%d" name
                  (Pimcomp.Mode.to_string mode)
                  batches window
              in
              Alcotest.(check bool)
                (label ^ ": streaming bit-identical to materialised")
                true
                (streamed = oracle);
              Alcotest.(check (option int))
                (label ^ ": detector off never fires")
                None stats.Pimsim.Engine.fired_at)
            [ 0; 8 ])
        [ 1; 2; 3; 8 ])
    (Lazy.force zoo_programs)

(* --- detector on vs off on real networks: counters exact, timing tight - *)

let test_zoo_detector_sanity () =
  List.iter
    (fun (name, mode) ->
      let program = compile_zoo ~mode name in
      let batches = 64 in
      let off, _ =
        Pimsim.Batch.run_stream ~parallelism:20 ~detect:false hw program
          ~batches
      in
      let streamed, stats =
        Pimsim.Batch.run_stream ~parallelism:20 hw program ~batches
      in
      let label = Fmt.str "%s %s" name (Pimcomp.Mode.to_string mode) in
      let mo = off.Pimsim.Batch.metrics in
      let ms = streamed.Pimsim.Batch.metrics in
      Alcotest.(check int)
        (label ^ ": executed exact") mo.Pimsim.Metrics.instrs_executed
        ms.Pimsim.Metrics.instrs_executed;
      Alcotest.(check int)
        (label ^ ": mvm windows exact") mo.Pimsim.Metrics.mvm_windows
        ms.Pimsim.Metrics.mvm_windows;
      Alcotest.(check int)
        (label ^ ": messages exact") mo.Pimsim.Metrics.messages
        ms.Pimsim.Metrics.messages;
      Alcotest.(check int)
        (label ^ ": flit-hops exact") mo.Pimsim.Metrics.flit_hops
        ms.Pimsim.Metrics.flit_hops;
      Alcotest.(check int)
        (label ^ ": load bytes exact") mo.Pimsim.Metrics.global_load_bytes
        ms.Pimsim.Metrics.global_load_bytes;
      Alcotest.(check int)
        (label ^ ": store bytes exact") mo.Pimsim.Metrics.global_store_bytes
        ms.Pimsim.Metrics.global_store_bytes;
      Alcotest.(check bool)
        (label ^ ": makespan within 1e-9 relative")
        true
        (close 1e-9 mo.Pimsim.Metrics.makespan_ns ms.Pimsim.Metrics.makespan_ns);
      Alcotest.(check bool)
        (label ^ ": dynamic energies within 1e-9 relative")
        true (dyn_close 1e-9 mo ms);
      (* per-core busy windows may be overestimated by up to about one
         window of steady intervals each (DESIGN.md §3.9) *)
      Alcotest.(check bool)
        (label ^ ": total energy within 5% relative")
        true
        (close 5e-2
           (Pimsim.Metrics.total_pj mo.Pimsim.Metrics.energy)
           (Pimsim.Metrics.total_pj ms.Pimsim.Metrics.energy));
      Alcotest.(check int)
        (label ^ ": provenance covers all instances")
        batches
        (stats.Pimsim.Engine.simulated_instances
        + stats.Pimsim.Engine.extrapolated_instances);
      Alcotest.(check int)
        (label ^ ": metrics provenance matches stats")
        stats.Pimsim.Engine.simulated_instances
        ms.Pimsim.Metrics.simulated_instances)
    [
      ("tiny", Pimcomp.Mode.High_throughput);
      ("tiny", Pimcomp.Mode.Low_latency);
      ("squeezenet", Pimcomp.Mode.High_throughput);
      ("resnet18", Pimcomp.Mode.High_throughput);
    ]

(* the acceptance-critical closure claim on a real network: with dyadic
   timing the detector fires on resnet18 and the closed makespan and
   steady interval are bit-identical to simulating every instance *)
let test_resnet_closure_exact () =
  let program = compile_zoo ~mode:Pimcomp.Mode.High_throughput "resnet18" in
  let batches = 64 in
  let off, _ =
    Pimsim.Batch.run_stream ~parallelism:20 ~detect:false hw_dyadic program
      ~batches
  in
  let on_, stats =
    Pimsim.Batch.run_stream ~parallelism:20 hw_dyadic program ~batches
  in
  Alcotest.(check bool)
    "detector fired" true
    (stats.Pimsim.Engine.fired_at <> None);
  Alcotest.(check bool)
    "a nontrivial tail was closed analytically" true
    (stats.Pimsim.Engine.extrapolated_instances > 0);
  Alcotest.(check (float 0.0))
    "closed makespan bit-identical"
    off.Pimsim.Batch.metrics.Pimsim.Metrics.makespan_ns
    on_.Pimsim.Batch.metrics.Pimsim.Metrics.makespan_ns;
  match stats.Pimsim.Engine.steady_interval_ns with
  | None -> Alcotest.fail "fired without an interval"
  | Some dt ->
      (* the detected interval is the exact steady retirement cadence,
         so total = total(sim prefix) + skipped x dt must hold exactly *)
      Alcotest.(check bool) "steady interval positive" true (dt > 0.0)

(* --- forced early period on dyadic timings: closure is bitwise exact -- *)

let mk_program ?(core_count = 2) ?(num_ags = 2) cores =
  {
    Pimcomp.Isa.graph_name = "micro";
    mode = Pimcomp.Mode.High_throughput;
    allocator = Pimcomp.Memalloc.Ag_reuse;
    core_count;
    cores;
    ag_core = Array.init num_ags (fun i -> i mod core_count);
    ag_xbars = Array.make num_ags 1;
    num_tags = 64;
    pipeline_depth = 1;
    memory =
      {
        Pimcomp.Isa.local_peak_bytes = Array.make core_count 0;
        local_resident_peak_bytes = Array.make core_count 0;
        spill_bytes = 0;
        global_load_bytes = 0;
        global_store_bytes = 0;
      };
    mem_trace = [||];
  }

let instr ?(deps = []) op = { Pimcomp.Isa.op; deps; node_id = 0 }

let micro_pipeline () =
  (* core 0: MVM -> SEND; core 1: RECV -> VEC -> STORE.  Exercises all
     resource classes (AG, VFU, bank, NoC rendezvous) so the steady
     state must repeat across every signature dimension. *)
  let mvm =
    instr
      (Pimcomp.Isa.Mvm
         { ag = 0; windows = 2; xbars = 1; input_bytes = 32; output_bytes = 32 })
  in
  let send =
    instr ~deps:[ 0 ] (Pimcomp.Isa.Send { dst = 1; bytes = 64; tag = 1 })
  in
  let recv = instr (Pimcomp.Isa.Recv { src = 0; bytes = 64; tag = 1 }) in
  let vec =
    instr ~deps:[ 0 ]
      (Pimcomp.Isa.Vec { kind = Pimcomp.Isa.Vadd; elements = 64 })
  in
  let store = instr ~deps:[ 1 ] (Pimcomp.Isa.Store { bytes = 256 }) in
  mk_program [| [| mvm; send |]; [| recv; vec; store |] |]

let micro_mvm_chain () =
  (* single core, two AGs, chained MVMs: pure issue-port + AG dynamics *)
  let mvm ag deps =
    instr ~deps
      (Pimcomp.Isa.Mvm
         { ag; windows = 1; xbars = 1; input_bytes = 16; output_bytes = 16 })
  in
  mk_program ~core_count:1 ~num_ags:2
    [| [| mvm 0 []; mvm 1 [ 0 ]; mvm 0 [ 1 ] |] |]

let test_dyadic_closure_exact () =
  List.iter
    (fun (label, program, parallelism) ->
      let batches = 64 in
      let oracle = Pimsim.Batch.run ~parallelism hw_dyadic program ~batches in
      let unbounded, unb_stats =
        Pimsim.Batch.run_stream ~parallelism ~window:0 ~detect:false hw_dyadic
          program ~batches
      in
      let off, off_stats =
        Pimsim.Batch.run_stream ~parallelism ~detect:false hw_dyadic program
          ~batches
      in
      let on_, on_stats =
        Pimsim.Batch.run_stream ~parallelism hw_dyadic program ~batches
      in
      Alcotest.(check bool)
        (label ^ ": unbounded stream bit-identical to materialised")
        true
        (unbounded = oracle);
      Alcotest.(check (option int))
        (label ^ ": detector needs a bounded window")
        None unb_stats.Pimsim.Engine.fired_at;
      Alcotest.(check bool)
        (label ^ ": detector fired")
        true
        (on_stats.Pimsim.Engine.fired_at <> None);
      Alcotest.(check bool)
        (label ^ ": closure bit-identical modulo dynamic-energy association")
        true
        (strip_dyn on_.Pimsim.Batch.metrics
        = strip_dyn off.Pimsim.Batch.metrics);
      Alcotest.(check bool)
        (label ^ ": dynamic energies within 1e-9 relative")
        true
        (dyn_close 1e-9 on_.Pimsim.Batch.metrics off.Pimsim.Batch.metrics);
      Alcotest.(check bool)
        (label ^ ": extrapolated a nontrivial tail")
        true
        (on_stats.Pimsim.Engine.extrapolated_instances > 0);
      (match on_stats.Pimsim.Engine.steady_interval_ns with
      | None -> Alcotest.fail (label ^ ": fired without an interval")
      | Some dt ->
          Alcotest.(check bool)
            (label ^ ": steady interval positive")
            true (dt > 0.0));
      Alcotest.(check int)
        (label ^ ": detect-off simulates everything")
        batches off_stats.Pimsim.Engine.simulated_instances)
    [
      ("pipeline", micro_pipeline (), 20);
      ("mvm-chain", micro_mvm_chain (), 20);
      ("pipeline P=1", micro_pipeline (), 1);
    ]

(* --- qcheck: window slack beyond the natural spread never matters ----- *)

let tiny_ht =
  lazy
    (let g = Nnir.Zoo.tiny () in
     let options =
       { Pimcomp.Compile.default_options with
         strategy = Pimcomp.Compile.Puma_like;
         mode = Pimcomp.Mode.High_throughput }
     in
     (Pimcomp.Compile.compile ~options hw g).Pimcomp.Compile.program)

let window_invariance =
  QCheck.Test.make
    ~name:"windows >= batches are all equivalent to unbounded" ~count:20
    QCheck.(triple (int_range 0 9) (int_range 0 9) (int_range 1 12))
    (fun (s1, s2, batches) ->
      (* v1 qcheck shrinks int_range toward 0, escaping the range *)
      QCheck.assume (s1 >= 0 && s2 >= 0 && batches >= 1);
      let program = Lazy.force tiny_ht in
      let run window =
        fst
          (Pimsim.Batch.run_stream ~parallelism:20 ~window ~detect:false hw
             program ~batches)
      in
      let unbounded = run 0 in
      (* an in-flight bound of [batches] (or more) can never bind, so
         the schedule must collapse to the unbounded one bit-for-bit *)
      run (batches + s1) = unbounded && run (batches + s2) = unbounded)

(* --- detector on == off for a forced early period (qcheck over seeds) - *)

let detector_equals_off_on_dyadic =
  QCheck.Test.make
    ~name:"detector-on == detector-off on dyadic-timing micro programs"
    ~count:15
    QCheck.(pair (int_range 2 5) (int_range 24 48))
    (fun (windows, batches) ->
      QCheck.assume (windows >= 1 && batches >= 24);
      let mvm =
        instr
          (Pimcomp.Isa.Mvm
             { ag = 0; windows; xbars = 1; input_bytes = 8; output_bytes = 8 })
      in
      let vec =
        instr ~deps:[ 0 ]
          (Pimcomp.Isa.Vec { kind = Pimcomp.Isa.Vadd; elements = 32 })
      in
      let program = mk_program ~core_count:1 ~num_ags:1 [| [| mvm; vec |] |] in
      let off, _ =
        Pimsim.Batch.run_stream ~parallelism:20 ~detect:false hw_dyadic program
          ~batches
      in
      let on_, stats =
        Pimsim.Batch.run_stream ~parallelism:20 hw_dyadic program ~batches
      in
      stats.Pimsim.Engine.fired_at <> None
      && strip_dyn on_.Pimsim.Batch.metrics = strip_dyn off.Pimsim.Batch.metrics
      && dyn_close 1e-9 on_.Pimsim.Batch.metrics off.Pimsim.Batch.metrics)

(* --- overflow guards -------------------------------------------------- *)

let test_overflow_guards () =
  let program = micro_pipeline () in
  (match Pimsim.Batch.replicate program ~batches:(max_int / 2) with
  | _ -> Alcotest.fail "replicate must reject overflowing batch counts"
  | exception Invalid_argument _ -> ());
  (match Pimsim.Batch.replicate program ~batches:0 with
  | _ -> Alcotest.fail "replicate must reject batches <= 0"
  | exception Invalid_argument _ -> ());
  let arena = Pimsim.Engine.arena ~parallelism:20 hw program in
  (match Pimsim.Engine.stream arena ~batches:(max_int / 2) with
  | _ -> Alcotest.fail "stream must reject overflowing batch counts"
  | exception Invalid_argument _ -> ());
  (match Pimsim.Engine.stream arena ~batches:(-1) with
  | _ -> Alcotest.fail "stream must reject batches <= 0"
  | exception Invalid_argument _ -> ());
  match Pimsim.Engine.stream arena ~window:(-1) ~batches:2 with
  | _ -> Alcotest.fail "stream must reject negative windows"
  | exception Invalid_argument _ -> ()

(* --- replicate strips the per-stream memory story --------------------- *)

let test_replicate_strips_memory () =
  let program = compile_zoo ~mode:Pimcomp.Mode.High_throughput "squeezenet" in
  let b = Pimsim.Batch.replicate program ~batches:3 in
  Alcotest.(check int) "trace stripped" 0 (Array.length b.Pimcomp.Isa.mem_trace);
  Alcotest.(check bool)
    "demand peaks zeroed" true
    (Array.for_all (( = ) 0) b.Pimcomp.Isa.memory.Pimcomp.Isa.local_peak_bytes);
  Alcotest.(check bool)
    "resident peaks zeroed" true
    (Array.for_all (( = ) 0)
       b.Pimcomp.Isa.memory.Pimcomp.Isa.local_resident_peak_bytes);
  Alcotest.(check int)
    "spill zeroed" 0 b.Pimcomp.Isa.memory.Pimcomp.Isa.spill_bytes;
  Alcotest.(check int)
    "load bytes scaled"
    (3 * program.Pimcomp.Isa.memory.Pimcomp.Isa.global_load_bytes)
    b.Pimcomp.Isa.memory.Pimcomp.Isa.global_load_bytes;
  Alcotest.(check int)
    "store bytes scaled"
    (3 * program.Pimcomp.Isa.memory.Pimcomp.Isa.global_store_bytes)
    b.Pimcomp.Isa.memory.Pimcomp.Isa.global_store_bytes;
  Alcotest.(check int)
    "stripped program verifies" 0
    (List.length (Pimcomp.Verify.run ~config:hw b))

(* --- constant-memory claim: bounded window => state independent of N -- *)

let test_window_stays_bounded () =
  let program = Lazy.force tiny_ht in
  let stats batches =
    snd
      (Pimsim.Batch.run_stream ~parallelism:20 ~detect:false hw program
         ~batches)
  in
  let s8 = stats 8 and s64 = stats 64 and s256 = stats 256 in
  Alcotest.(check int)
    "slot pool independent of batch count (8 vs 64)"
    s8.Pimsim.Engine.peak_slots s64.Pimsim.Engine.peak_slots;
  Alcotest.(check int)
    "slot pool independent of batch count (64 vs 256)"
    s64.Pimsim.Engine.peak_slots s256.Pimsim.Engine.peak_slots;
  Alcotest.(check int)
    "state words independent of batch count (8 vs 256)"
    s8.Pimsim.Engine.state_words s256.Pimsim.Engine.state_words;
  Alcotest.(check bool)
    "slot pool bounded by the window" true
    (s256.Pimsim.Engine.peak_slots
    <= Pimsim.Batch.default_window program)

let () =
  Alcotest.run "stream"
    [
      ( "differential",
        [
          Alcotest.test_case "zoo: streaming == materialised (detect off)"
            `Slow test_zoo_differential;
          Alcotest.test_case "zoo: detector-on counters exact, timing tight"
            `Slow test_zoo_detector_sanity;
        ] );
      ( "detector",
        [
          Alcotest.test_case "dyadic closure bitwise exact" `Quick
            test_dyadic_closure_exact;
          Alcotest.test_case "resnet18 closure exact (dyadic)" `Slow
            test_resnet_closure_exact;
          QCheck_alcotest.to_alcotest detector_equals_off_on_dyadic;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest window_invariance;
          Alcotest.test_case "window slots bounded" `Quick
            test_window_stays_bounded;
        ] );
      ( "guards",
        [
          Alcotest.test_case "overflow guards" `Quick test_overflow_guards;
          Alcotest.test_case "replicate strips memory" `Quick
            test_replicate_strips_memory;
        ] );
    ]
