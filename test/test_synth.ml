(* Tests for the design-space synthesiser: Design_space enumeration and
   scaling, archive/dominance semantics, determinism and
   prune/memoise-invariance of the frontier (stub evaluator), bounded
   infeasibility, and an end-to-end compile+simulate search that must
   be bit-identical for any pool domain count. *)

module Ds = Pimhw.Design_space
module Synth = Pimcomp.Synth

let small_axes =
  {
    Ds.xbar_size_axis = [ 64; 128 ];
    xbars_per_core_axis = [ 8; 16 ];
    core_count_axis = [ 4; 9 ];
    local_memory_kb_axis = [ 32; 64 ];
    vfus_per_core_axis = [ 12 ];
  }

let stub_networks =
  [| ("a", Nnir.Zoo.tiny ()); ("b", Nnir.Zoo.mlp ()) |]

(* A pure analytic evaluator: no compile, instant, deterministic.
   Bigger machines are faster but burn more power, so the frontier is
   a genuine trade-off curve.  It agrees with the compiler (and hence
   with the analytic pre-filter) on feasibility — the premise of the
   prune-invariance contract — by consulting the partition table. *)
let stub_eval (jobs : Synth.job array) =
  Array.map
    (fun (j : Synth.job) ->
      let _, graph = stub_networks.(j.Synth.network) in
      let table = Pimcomp.Partition.of_graph j.Synth.config graph in
      let supply = Pimhw.Config.total_crossbars j.Synth.config in
      let max_per_ag =
        Array.fold_left
          (fun acc (i : Pimcomp.Partition.info) -> max acc i.Pimcomp.Partition.xbars_per_ag)
          0 (Pimcomp.Partition.entries table)
      in
      if
        Pimcomp.Partition.min_xbars table > supply
        || max_per_ag > j.Synth.config.Pimhw.Config.xbars_per_core
      then Synth.Eval_infeasible "stub: weights do not fit"
      else
        let xbars = float_of_int supply in
        let net_weight = float_of_int (j.Synth.network + 1) in
        Synth.Eval_ok
          {
            time_ns = net_weight *. 1e6 /. xbars;
            energy_pj = net_weight *. Pimhw.Config.chip_power_mw j.Synth.config;
          })
    jobs

let run_stub ?(params = { Synth.default_params with generations = 4 }) () =
  Synth.run ~params ~axes:small_axes ~networks:stub_networks ~eval:stub_eval ()

(* ---------------- Design_space ---------------- *)

let test_enumerate () =
  let points = Ds.enumerate small_axes in
  Alcotest.(check int)
    "cardinality matches cross product" (Ds.cardinality small_axes)
    (List.length points);
  Alcotest.(check int) "2*2*2*2*1 grid" 16 (List.length points);
  let uniq = List.sort_uniq compare points in
  Alcotest.(check int) "no duplicate points" 16 (List.length uniq)

let test_to_config_valid () =
  (* Config.validate accepts every point the enumerator can emit, for
     both the small grid and the default axes. *)
  List.iter
    (fun axes ->
      List.iter
        (fun p ->
          Ds.validate_point p;
          let config = Ds.to_config p in
          Pimhw.Config.validate config;
          Alcotest.(check int)
            (Ds.point_name p ^ " crossbar supply")
            (Ds.crossbar_supply p)
            (Pimhw.Config.total_crossbars config))
        (Ds.enumerate axes))
    [ small_axes; Ds.default_axes ]

let test_to_config_scaling () =
  let base = Pimhw.Config.puma_like in
  let p =
    {
      Ds.xbar_size = base.Pimhw.Config.xbar_rows;
      xbars_per_core = base.Pimhw.Config.xbars_per_core;
      core_count = base.Pimhw.Config.core_count;
      local_memory_kb = base.Pimhw.Config.local_memory_bytes / 1024;
      vfus_per_core = base.Pimhw.Config.vfus_per_core;
    }
  in
  Alcotest.(check bool) "identity point reproduces Table I" true
    (Ds.to_config p = base);
  let double_mem = Ds.to_config { p with Ds.local_memory_kb = 128 } in
  Alcotest.(check (float 1e-9))
    "scratchpad power scales linearly with capacity"
    (2.0 *. base.Pimhw.Config.local_memory_power_mw)
    double_mem.Pimhw.Config.local_memory_power_mw

let test_axis_access () =
  let p = List.hd (Ds.enumerate small_axes) in
  for axis = 0 to Ds.axis_count - 1 do
    List.iter
      (fun v ->
        Alcotest.(check int)
          (Printf.sprintf "axis %d roundtrip" axis)
          v
          (Ds.axis_value (Ds.with_axis p axis v) axis))
      (Ds.axis_values small_axes axis)
  done

(* ---------------- dominance and frontier ---------------- *)

let obj time_ns energy_pj area_mm2 = { Synth.time_ns; energy_pj; area_mm2 }

let test_dominates () =
  Alcotest.(check bool) "strictly better" true
    (Synth.dominates (obj 1. 1. 1.) (obj 2. 2. 2.));
  Alcotest.(check bool) "better on one axis" true
    (Synth.dominates (obj 1. 2. 2.) (obj 2. 2. 2.));
  Alcotest.(check bool) "equal does not dominate" false
    (Synth.dominates (obj 1. 1. 1.) (obj 1. 1. 1.));
  Alcotest.(check bool) "trade-off does not dominate" false
    (Synth.dominates (obj 1. 3. 1.) (obj 2. 2. 2.))

let check_non_dominated frontier =
  List.iter
    (fun (a : Synth.frontier_point) ->
      List.iter
        (fun (b : Synth.frontier_point) ->
          if a != b then
            Alcotest.(check bool)
              (Printf.sprintf "%s not dominated by %s"
                 (Ds.point_name a.Synth.point)
                 (Ds.point_name b.Synth.point))
              false
              (Synth.dominates b.Synth.objectives a.Synth.objectives))
        frontier)
    frontier

let test_frontier_non_dominated () =
  let r = run_stub () in
  Alcotest.(check bool) "frontier non-empty" true (r.Synth.frontier <> []);
  check_non_dominated r.Synth.frontier

let test_deterministic () =
  let a = run_stub () and b = run_stub () in
  Alcotest.(check bool) "same seed, bit-identical frontier" true
    (a.Synth.frontier = b.Synth.frontier)

let test_prune_memoise_invariance () =
  (* prune/memoise only change cost, never the result. *)
  let base_params = { Synth.default_params with generations = 4 } in
  let reference = (run_stub ~params:base_params ()).Synth.frontier in
  List.iter
    (fun (prune, memoise) ->
      let r =
        run_stub ~params:{ base_params with Synth.prune; memoise } ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "prune=%b memoise=%b frontier unchanged" prune memoise)
        true
        (r.Synth.frontier = reference))
    [ (true, false); (false, true); (false, false) ]

let test_memoisation_saves_work () =
  let r_memo = run_stub () in
  let r_naive =
    run_stub
      ~params:
        { Synth.default_params with generations = 4; memoise = false }
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "memoised eval jobs (%d) < naive (%d)"
       r_memo.Synth.stats.Synth.eval_jobs r_naive.Synth.stats.Synth.eval_jobs)
    true
    (r_memo.Synth.stats.Synth.eval_jobs < r_naive.Synth.stats.Synth.eval_jobs);
  Alcotest.(check bool) "memo hits recorded" true
    (r_memo.Synth.stats.Synth.memo_hits > 0)

let test_stats_consistency () =
  let r = run_stub () in
  let s = r.Synth.stats in
  Alcotest.(check int) "every candidate accounted for"
    s.Synth.considered
    (s.Synth.evaluated + s.Synth.memo_hits + s.Synth.pruned_capacity
   + s.Synth.pruned_area);
  Alcotest.(check int) "jobs = evaluated x networks"
    (s.Synth.evaluated * Array.length stub_networks)
    s.Synth.eval_jobs

(* ---------------- bounded failures ---------------- *)

let test_infeasible_recorded () =
  (* Evaluator declares every 64-wide crossbar point infeasible for
     network 1: the search must record the points and keep going. *)
  let eval (jobs : Synth.job array) =
    Array.map
      (fun (j : Synth.job) ->
        if j.Synth.network = 1 && j.Synth.point.Ds.xbar_size = 64 then
          Synth.Eval_infeasible "stub: does not fit"
        else
          match stub_eval [| j |] with [| e |] -> e | _ -> assert false)
      jobs
  in
  let r =
    Synth.run
      ~params:{ Synth.default_params with generations = 2 }
      ~axes:small_axes ~networks:stub_networks ~eval ()
  in
  Alcotest.(check bool) "infeasible points recorded" true
    (r.Synth.stats.Synth.infeasible > 0);
  Alcotest.(check bool) "search still produced a frontier" true
    (r.Synth.frontier <> []);
  List.iter
    (fun (fp : Synth.frontier_point) ->
      Alcotest.(check bool) "no infeasible point on the frontier" true
        (fp.Synth.point.Ds.xbar_size <> 64))
    r.Synth.frontier;
  match r.Synth.infeasible_points with
  | (_, reason) :: _ ->
      Alcotest.(check bool) "reason names the network" true
        (String.length reason > 0)
  | [] -> Alcotest.fail "expected infeasible log entries"

exception Boom

let test_evaluator_exception_aborts () =
  let eval _ = raise Boom in
  match
    Synth.run
      ~params:{ Synth.default_params with generations = 0 }
      ~axes:small_axes ~networks:stub_networks ~eval ()
  with
  | _ -> Alcotest.fail "evaluator exception must propagate"
  | exception Boom -> ()

(* ---------------- end-to-end compile + simulate ---------------- *)

let e2e_axes =
  (* Supplies of 1..64 crossbars: the 1-crossbar corner cannot hold
     even the tiny network, so both the analytic pre-filter (prune on)
     and the compiler (prune off) must reject it — with an identical
     frontier either way. *)
  {
    Ds.xbar_size_axis = [ 64 ];
    xbars_per_core_axis = [ 1; 16 ];
    core_count_axis = [ 1; 4 ];
    local_memory_kb_axis = [ 64 ];
    vfus_per_core_axis = [ 12 ];
  }

let e2e_networks = [| ("tiny", Nnir.Zoo.tiny ()) |]

let e2e_options =
  {
    Pimcomp.Compile.default_options with
    strategy = Pimcomp.Compile.Puma_like;
    mode = Pimcomp.Mode.High_throughput;
  }

let run_e2e ~domains ~prune =
  let pool = Pimsim.Parallel_sweep.create_pool ~domains () in
  Fun.protect
    ~finally:(fun () -> Pimsim.Parallel_sweep.shutdown_pool pool)
    (fun () ->
      Synth.run
        ~params:{ Synth.default_params with generations = 2; prune }
        ~options:e2e_options ~axes:e2e_axes ~networks:e2e_networks
        ~eval:(Pimsim.Synth_eval.evaluator ~pool ~networks:e2e_networks ())
        ())

let test_e2e_search () =
  let r = run_e2e ~domains:1 ~prune:true in
  Alcotest.(check bool) "frontier non-empty" true (r.Synth.frontier <> []);
  check_non_dominated r.Synth.frontier;
  Alcotest.(check bool) "hopeless corner pruned analytically" true
    (r.Synth.stats.Synth.pruned_capacity > 0)

let test_e2e_prune_invariance () =
  let pruned = run_e2e ~domains:1 ~prune:true in
  let naive = run_e2e ~domains:1 ~prune:false in
  Alcotest.(check bool) "pruned and naive frontiers identical" true
    (pruned.Synth.frontier = naive.Synth.frontier);
  Alcotest.(check bool) "naive run hit real compile infeasibility" true
    (naive.Synth.stats.Synth.infeasible > 0)

let test_e2e_domain_independence () =
  let one = run_e2e ~domains:1 ~prune:true in
  let four = run_e2e ~domains:4 ~prune:true in
  Alcotest.(check bool) "frontier bit-identical for 1 vs 4 domains" true
    (one.Synth.frontier = four.Synth.frontier);
  Alcotest.(check bool) "search counters identical too" true
    (let strip (s : Synth.stats) =
       { s with Synth.wall_seconds = 0.0; eval_seconds = 0.0 }
     in
     strip one.Synth.stats = strip four.Synth.stats)

let () =
  Alcotest.run "synth"
    [
      ( "design_space",
        [
          Alcotest.test_case "enumerate" `Quick test_enumerate;
          Alcotest.test_case "to_config validates" `Quick test_to_config_valid;
          Alcotest.test_case "to_config scaling" `Quick test_to_config_scaling;
          Alcotest.test_case "axis access" `Quick test_axis_access;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "non-dominated" `Quick test_frontier_non_dominated;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "prune/memoise invariance" `Quick
            test_prune_memoise_invariance;
          Alcotest.test_case "memoisation saves work" `Quick
            test_memoisation_saves_work;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
        ] );
      ( "failures",
        [
          Alcotest.test_case "infeasible recorded" `Quick
            test_infeasible_recorded;
          Alcotest.test_case "evaluator exception aborts" `Quick
            test_evaluator_exception_aborts;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "search" `Quick test_e2e_search;
          Alcotest.test_case "prune invariance" `Quick
            test_e2e_prune_invariance;
          Alcotest.test_case "domain independence" `Quick
            test_e2e_domain_independence;
        ] );
    ]
