(* Tests for the static program verifier: acceptance over the full zoo
   (every network x mode x allocator, PUMA-like mapping), a corpus of
   programmatic corruptions that must each be rejected with the expected
   violation kind and a precise core/instr diagnostic, and qcheck
   acceptance over random mappings. *)

module Isa = Pimcomp.Isa
module Verify = Pimcomp.Verify

let hw = Pimhw.Config.puma_like

let compile ?(name = "tiny") ?(mode = Pimcomp.Mode.Low_latency)
    ?(allocator = Pimcomp.Memalloc.Ag_reuse) () =
  let g = Nnir.Zoo.build ~input_size:(Nnir.Zoo.min_input_size name) name in
  let options =
    {
      Pimcomp.Compile.default_options with
      strategy = Pimcomp.Compile.Puma_like;
      mode;
      allocator;
      (* the corpus corrupts the result on purpose; verify explicitly *)
      verify = false;
    }
  in
  (g, (Pimcomp.Compile.compile ~options hw g).Pimcomp.Compile.program)

(* --- acceptance: the whole zoo verifies, every mode and allocator ----- *)

let test_zoo_differential () =
  List.iter
    (fun name ->
      List.iter
        (fun mode ->
          List.iter
            (fun allocator ->
              let g, p = compile ~name ~mode ~allocator () in
              match Verify.run ~graph:g ~config:hw p with
              | [] -> ()
              | vs ->
                  Alcotest.failf "%s %s %s: %a" name
                    (Pimcomp.Mode.to_string mode)
                    (Pimcomp.Memalloc.strategy_name allocator)
                    Verify.report vs)
            [ Pimcomp.Memalloc.Naive; Pimcomp.Memalloc.Add_reuse;
              Pimcomp.Memalloc.Ag_reuse ])
        Pimcomp.Mode.all)
    Nnir.Zoo.names

(* --- mutation corpus ------------------------------------------------- *)

let map_instr (p : Isa.t) ~core ~idx f =
  {
    p with
    Isa.cores =
      Array.mapi
        (fun c instrs ->
          if c <> core then instrs
          else
            Array.mapi (fun i ins -> if i <> idx then ins else f ins) instrs)
        p.Isa.cores;
  }

let find_op (p : Isa.t) pred =
  let found = ref None in
  Array.iteri
    (fun core instrs ->
      Array.iteri
        (fun idx (i : Isa.instr) ->
          if !found = None && pred i.Isa.op then found := Some (core, idx, i))
        instrs)
    p.Isa.cores;
  match !found with
  | Some x -> x
  | None -> Alcotest.fail "corpus program lacks the required instruction"

let is_send = function Isa.Send _ -> true | _ -> false
let is_recv = function Isa.Recv _ -> true | _ -> false
let is_mvm = function Isa.Mvm _ -> true | _ -> false

let neutralise (i : Isa.instr) =
  { i with Isa.op = Isa.Vec { kind = Isa.Vmove; elements = 0 } }

(* Every mutation must be rejected with its kind; when the mutation has
   a well-defined site, the diagnostic must name that exact core and
   instruction.  Built over alexnet LL — the smallest zoo program whose
   PUMA-like mapping produces cross-core rendezvous. *)
let corpus () :
    Nnir.Graph.t
    * (string * Verify.kind * Isa.t * (int * int option) option) list =
  let g, p = compile ~name:"alexnet" () in
  let send_core, send_idx, send_instr = find_op p is_send in
  let recv_core, recv_idx, _ = find_op p is_recv in
  let mvm_core, mvm_idx, mvm_instr = find_op p is_mvm in
  let send_tag =
    match send_instr.Isa.op with Isa.Send s -> s.tag | _ -> assert false
  in
  let mvm_ag =
    match mvm_instr.Isa.op with Isa.Mvm m -> m.ag | _ -> assert false
  in
  (* a second send on a different tag, for the duplicate-tag mutation *)
  let send2_core, send2_idx, _ =
    find_op p (function Isa.Send s -> s.tag <> send_tag | _ -> false)
  in
  let deadlock =
    (* two cores each waiting on the other's message before sending
       their own: structurally clean, pairwise matched, and stuck *)
    let recv ~src ~tag = { Isa.op = Isa.Recv { src; bytes = 8; tag }; deps = []; node_id = -1 } in
    let send ~dst ~tag =
      { Isa.op = Isa.Send { dst; bytes = 8; tag }; deps = [ 0 ]; node_id = -1 }
    in
    {
      Isa.graph_name = "deadlock";
      mode = Pimcomp.Mode.Low_latency;
      allocator = Pimcomp.Memalloc.Ag_reuse;
      core_count = 2;
      cores =
        [|
          [| recv ~src:1 ~tag:0; send ~dst:1 ~tag:1 |];
          [| recv ~src:0 ~tag:1; send ~dst:0 ~tag:0 |];
        |];
      ag_core = [||];
      ag_xbars = [||];
      num_tags = 2;
      pipeline_depth = 1;
      memory =
        {
          Isa.local_peak_bytes = [| 0; 0 |];
          local_resident_peak_bytes = [| 0; 0 |];
          spill_bytes = 0;
          global_load_bytes = 0;
          global_store_bytes = 0;
        };
      mem_trace = [||];
    }
  in
  ( g,
    [
    ( "forward dep",
      Verify.Dep_out_of_range,
      map_instr p ~core:mvm_core ~idx:mvm_idx (fun i ->
          { i with Isa.deps = [ mvm_idx + 1 ] }),
      Some (mvm_core, Some mvm_idx) );
    ( "unknown node",
      Verify.Unknown_node,
      map_instr p ~core:mvm_core ~idx:mvm_idx (fun i ->
          { i with Isa.node_id = 999_999 }),
      Some (mvm_core, Some mvm_idx) );
    ( "AG out of range",
      Verify.Ag_out_of_range,
      map_instr p ~core:mvm_core ~idx:mvm_idx (fun i ->
          match i.Isa.op with
          | Isa.Mvm m ->
              { i with Isa.op = Isa.Mvm { m with ag = Array.length p.Isa.ag_core + 3 } }
          | _ -> i),
      Some (mvm_core, Some mvm_idx) );
    ( "AG remapped cross-core",
      Verify.Ag_foreign_core,
      {
        p with
        Isa.ag_core =
          Array.mapi
            (fun ag c ->
              if ag = mvm_ag then (c + 1) mod p.Isa.core_count else c)
            p.Isa.ag_core;
      },
      Some (mvm_core, Some mvm_idx) );
    ( "xbars mismatch",
      Verify.Xbars_mismatch,
      map_instr p ~core:mvm_core ~idx:mvm_idx (fun i ->
          match i.Isa.op with
          | Isa.Mvm m -> { i with Isa.op = Isa.Mvm { m with xbars = m.xbars + 1 } }
          | _ -> i),
      Some (mvm_core, Some mvm_idx) );
    ( "SEND to nonexistent core",
      Verify.Endpoint_out_of_range,
      map_instr p ~core:send_core ~idx:send_idx (fun i ->
          match i.Isa.op with
          | Isa.Send s ->
              { i with Isa.op = Isa.Send { s with dst = p.Isa.core_count + 7 } }
          | _ -> i),
      Some (send_core, Some send_idx) );
    ( "tag out of range",
      Verify.Tag_out_of_range,
      map_instr p ~core:recv_core ~idx:recv_idx (fun i ->
          match i.Isa.op with
          | Isa.Recv r ->
              { i with Isa.op = Isa.Recv { r with tag = p.Isa.num_tags + 9 } }
          | _ -> i),
      Some (recv_core, Some recv_idx) );
    ( "duplicate tag",
      Verify.Duplicate_tag,
      map_instr p ~core:send2_core ~idx:send2_idx (fun i ->
          match i.Isa.op with
          | Isa.Send s -> { i with Isa.op = Isa.Send { s with tag = send_tag } }
          | _ -> i),
      None );
    ( "dropped RECV",
      Verify.Unmatched_send,
      map_instr p ~core:recv_core ~idx:recv_idx neutralise,
      None );
    ( "dropped SEND",
      Verify.Unmatched_recv,
      map_instr p ~core:send_core ~idx:send_idx neutralise,
      None );
    ( "rendezvous byte mismatch",
      Verify.Rendezvous_mismatch,
      map_instr p ~core:send_core ~idx:send_idx (fun i ->
          match i.Isa.op with
          | Isa.Send s -> { i with Isa.op = Isa.Send { s with bytes = s.bytes + 1 } }
          | _ -> i),
      Some (send_core, Some send_idx) );
    ("rendezvous cycle", Verify.Rendezvous_deadlock, deadlock, Some (0, Some 0));
    ( "inflated peak",
      Verify.Memory_drift,
      {
        p with
        Isa.memory =
          {
            p.Isa.memory with
            Isa.local_peak_bytes =
              Array.mapi
                (fun c b -> if c = 0 then b + 1024 else b)
                p.Isa.memory.Isa.local_peak_bytes;
          };
      },
      Some (0, None) );
    ( "inflated global traffic",
      Verify.Memory_drift,
      {
        p with
        Isa.memory =
          {
            p.Isa.memory with
            Isa.global_load_bytes = p.Isa.memory.Isa.global_load_bytes + 64;
          };
      },
      None );
    ( "crossbar capacity exceeded",
      Verify.Capacity_exceeded,
      {
        p with
        Isa.ag_xbars =
          Array.mapi
            (fun ag x ->
              if ag = mvm_ag then x + hw.Pimhw.Config.xbars_per_core else x)
            p.Isa.ag_xbars;
      },
      Some (mvm_core, None) );
    ( "negative operand",
      Verify.Bad_operand,
      map_instr p ~core:mvm_core ~idx:mvm_idx (fun i ->
          { i with Isa.op = Isa.Vec { kind = Isa.Vadd; elements = -5 } }),
      Some (mvm_core, Some mvm_idx) );
  ] )

let test_corpus_rejected () =
  let g, cases = corpus () in
  let distinct = Hashtbl.create 16 in
  List.iter
    (fun (label, kind, corrupted, site) ->
      let vs = Verify.run ~graph:g ~config:hw corrupted in
      let matching =
        List.filter (fun (v : Verify.violation) -> v.Verify.kind = kind) vs
      in
      if matching = [] then
        Alcotest.failf "%s: expected %s, got %a" label (Verify.kind_name kind)
          Verify.report vs;
      Hashtbl.replace distinct (Verify.kind_name kind) ();
      match site with
      | None -> () (* program-wide violation, no single site *)
      | Some (core, instr) ->
          Alcotest.(check bool)
            (label ^ ": diagnostic names the corrupted site")
            true
            (List.exists
               (fun (v : Verify.violation) ->
                 v.Verify.core = Some core
                 && match instr with
                    | None -> true
                    | Some i -> v.Verify.instr = Some i)
               matching))
    cases;
  Alcotest.(check bool) "corpus covers >= 8 distinct violation kinds" true
    (Hashtbl.length distinct >= 8)

let test_clean_program_accepted () =
  let g, p = compile () in
  Alcotest.(check int) "no violations" 0
    (List.length (Verify.run ~graph:g ~config:hw p));
  (* report renders both verdicts *)
  Alcotest.(check bool) "clean report" true
    (Fmt.str "%a" Verify.report [] <> "");
  let cg, cases = corpus () in
  let _, kind, corrupted, _ = List.nth cases 0 in
  let vs = Verify.run ~graph:cg ~config:hw corrupted in
  let rendered = Fmt.str "%a" Verify.report vs in
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "violation report names the kind" true
    (contains ~needle:(Verify.kind_name kind) rendered)

let test_compile_rejects_corruption () =
  (* compile with verify=true must raise on a program the schedulers
     could never emit -- exercised through run_exn, which Compile uses *)
  let g, p = compile ~name:"alexnet" () in
  let core, idx, _ = find_op p is_recv in
  let corrupted = map_instr p ~core ~idx neutralise in
  (match Verify.run_exn ~graph:g ~config:hw corrupted with
  | () -> Alcotest.fail "run_exn accepted a corrupted program"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the violation" true
        (String.length msg > 0));
  Verify.run_exn ~graph:g ~config:hw p

(* Engine-level subset: hand-built programs with unmatched rendezvous
   must still pass (they simulate to a deadlocked result), while index
   corruption must be rejected before the arena is built. *)
let test_well_formed_subset () =
  let _, p = compile ~name:"alexnet" () in
  let core, idx, _ = find_op p is_recv in
  let unmatched = map_instr p ~core ~idx neutralise in
  Verify.well_formed_exn unmatched;
  let bad_dep =
    map_instr p ~core ~idx (fun i -> { i with Isa.deps = [ 999_999 ] })
  in
  (match Verify.well_formed_exn bad_dep with
  | () -> Alcotest.fail "well_formed_exn accepted a dangling dep"
  | exception Invalid_argument _ -> ());
  match Pimsim.Engine.run hw bad_dep with
  | _ -> Alcotest.fail "engine simulated a program with a dangling dep"
  | exception Invalid_argument _ -> ()

(* --- qcheck: random mappings always produce verifying programs ------- *)

let random_mappings_verify =
  QCheck.Test.make ~name:"random mappings verify (both schedulers)" ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Nnir.Zoo.tiny () in
      let table = Pimcomp.Partition.of_graph hw g in
      let rng = Pimcomp.Rng.create ~seed in
      let chrom =
        Pimcomp.Chromosome.random_initial rng table ~core_count:6
          ~max_node_num_in_core:8 ~extra_replica_attempts:3 ()
      in
      let layout = Pimcomp.Layout.of_chromosome chrom in
      List.for_all
        (fun program -> Verify.run ~graph:g ~config:hw program = [])
        [
          Pimcomp.Schedule_ht.schedule layout;
          Pimcomp.Schedule_ll.schedule layout;
        ])

let random_options_verify =
  QCheck.Test.make ~name:"random compile options verify" ~count:8
    QCheck.(triple (int_range 0 1000) bool (int_range 0 2))
    (fun (seed, ht, alloc) ->
      let allocator =
        match alloc with
        | 0 -> Pimcomp.Memalloc.Naive
        | 1 -> Pimcomp.Memalloc.Add_reuse
        | _ -> Pimcomp.Memalloc.Ag_reuse
      in
      let mode =
        if ht then Pimcomp.Mode.High_throughput else Pimcomp.Mode.Low_latency
      in
      let g = Nnir.Zoo.tiny () in
      let options =
        {
          Pimcomp.Compile.default_options with
          strategy =
            Pimcomp.Compile.Genetic_algorithm Pimcomp.Genetic.fast_params;
          seed;
          mode;
          allocator;
          core_count = Some 8;
          (* compile verifies internally; a violation raises *)
          verify = true;
        }
      in
      let r = Pimcomp.Compile.compile ~options hw g in
      Verify.run ~graph:g ~config:hw r.Pimcomp.Compile.program = [])

let () =
  Alcotest.run "verify"
    [
      ( "acceptance",
        [
          Alcotest.test_case "zoo x mode x allocator" `Quick
            test_zoo_differential;
          Alcotest.test_case "clean program accepted" `Quick
            test_clean_program_accepted;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "mutations rejected with kinds" `Quick
            test_corpus_rejected;
          Alcotest.test_case "run_exn raises" `Quick
            test_compile_rejects_corruption;
          Alcotest.test_case "engine subset" `Quick test_well_formed_subset;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest random_mappings_verify;
          QCheck_alcotest.to_alcotest random_options_verify;
        ] );
    ]
